"""Tests for the simplified BGP decision process."""

import pytest

from repro.errors import RoutingError
from repro.routing.bgp import BgpSpeaker, RouteAdvertisement, decide_best_route


def route(ic, med=0, lp=100, igp=0.0, path=("peer",), prefix="10.0.0.0/8",
          neighbor="peer"):
    return RouteAdvertisement(
        prefix=prefix,
        neighbor_as=neighbor,
        as_path=path,
        interconnection=ic,
        med=med,
        local_pref=lp,
        igp_distance=igp,
    )


class TestAdvertisement:
    def test_valid(self):
        assert route(0).interconnection == 0

    def test_empty_prefix(self):
        with pytest.raises(RoutingError):
            route(0, prefix="")

    def test_empty_path(self):
        with pytest.raises(RoutingError):
            RouteAdvertisement("10.0.0.0/8", "p", (), 0)

    def test_first_hop_must_be_neighbor(self):
        with pytest.raises(RoutingError):
            RouteAdvertisement("10.0.0.0/8", "p", ("other",), 0)

    def test_prepending(self):
        base = route(0, path=("peer", "origin"))
        prepended = base.prepended(2)
        assert prepended.as_path == ("peer", "peer", "peer", "origin")

    def test_prepend_zero_identity(self):
        base = route(0)
        assert base.prepended(0).as_path == base.as_path

    def test_prepend_negative(self):
        with pytest.raises(RoutingError):
            route(0).prepended(-1)


class TestDecisionProcess:
    def test_local_pref_wins(self):
        best = decide_best_route([route(0, lp=100), route(1, lp=200)])
        assert best.interconnection == 1

    def test_shorter_as_path_wins(self):
        long = route(0, path=("peer", "peer", "origin"))
        short = route(1, path=("peer", "origin"))
        assert decide_best_route([long, short]).interconnection == 1

    def test_prepending_deflects_traffic(self):
        plain = route(0, path=("peer", "origin"))
        padded = route(1, path=("peer", "origin")).prepended(3)
        assert decide_best_route([plain, padded]).interconnection == 0

    def test_med_breaks_ties_same_neighbor(self):
        best = decide_best_route([route(0, med=30), route(1, med=10)])
        assert best.interconnection == 1

    def test_med_ignored_when_not_honored(self):
        best = decide_best_route(
            [route(0, med=30, igp=1.0), route(1, med=10, igp=5.0)],
            honor_med=False,
        )
        # Falls through to hot potato.
        assert best.interconnection == 0

    def test_med_not_compared_across_neighbors(self):
        a = route(0, med=50, neighbor="x", path=("x",), igp=1.0)
        b = route(1, med=1, neighbor="y", path=("y",), igp=5.0)
        # Different neighbors: MED does not filter; IGP decides.
        assert decide_best_route([a, b]).interconnection == 0

    def test_hot_potato(self):
        best = decide_best_route([route(0, igp=10.0), route(1, igp=2.0)])
        assert best.interconnection == 1

    def test_final_tie_break_lowest_ic(self):
        best = decide_best_route([route(2), route(1)])
        assert best.interconnection == 1

    def test_empty_routes(self):
        with pytest.raises(RoutingError):
            decide_best_route([])

    def test_mixed_prefixes_rejected(self):
        with pytest.raises(RoutingError):
            decide_best_route([route(0), route(1, prefix="11.0.0.0/8")])

    def test_precedence_order(self):
        # local_pref dominates everything, even terrible igp/med.
        best = decide_best_route(
            [route(0, lp=200, med=99, igp=99.0),
             route(1, lp=100, med=0, igp=0.0)]
        )
        assert best.interconnection == 0


class TestBgpSpeaker:
    def test_loop_prevention(self):
        speaker = BgpSpeaker(asn="me")
        speaker.receive(route(0, path=("peer", "me", "origin")))
        assert speaker.known_prefixes() == []

    def test_best_route_selection(self):
        speaker = BgpSpeaker(asn="me")
        speaker.receive_all([route(0, igp=5.0), route(1, igp=1.0)])
        assert speaker.best_route("10.0.0.0/8").interconnection == 1

    def test_unknown_prefix(self):
        speaker = BgpSpeaker(asn="me")
        with pytest.raises(RoutingError):
            speaker.best_route("10.0.0.0/8")

    def test_best_routes_all_prefixes(self):
        speaker = BgpSpeaker(asn="me")
        speaker.receive(route(0))
        speaker.receive(route(1, prefix="11.0.0.0/8"))
        best = speaker.best_routes()
        assert set(best) == {"10.0.0.0/8", "11.0.0.0/8"}
