"""Tests for the bandwidth experiment (Section 5.2 harness)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.bandwidth import (
    run_bandwidth_case,
    run_bandwidth_experiment,
)
from repro.experiments.config import ExperimentConfig
from repro.geo.population import PopulationModel
from repro.topology.dataset import build_default_dataset
from repro.traffic.gravity import GravityWorkload


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig.quick()


@pytest.fixture(scope="module")
def dataset(config):
    return build_default_dataset(config.dataset)


@pytest.fixture(scope="module")
def workload(dataset):
    return GravityWorkload(PopulationModel(dataset.city_db))


@pytest.fixture(scope="module")
def pair(dataset):
    return dataset.pairs(min_interconnections=3, max_pairs=1)[0]


@pytest.fixture(scope="module")
def case(pair, config, workload):
    return run_bandwidth_case(
        pair, 0, config, workload,
        include_unilateral=True, include_cheating=True, include_diverse=True,
    )


class TestCase:
    def test_mels_positive(self, case):
        for value in (case.mel_default_a, case.mel_default_b,
                      case.mel_negotiated_a, case.mel_negotiated_b,
                      case.mel_opt_a, case.mel_opt_b):
            assert value > 0

    def test_optimal_joint_is_lower_bound(self, case):
        assert case.mel_opt_joint <= max(case.mel_default_a,
                                         case.mel_default_b) + 1e-6
        assert case.mel_opt_joint <= max(case.mel_negotiated_a,
                                         case.mel_negotiated_b) + 1e-6

    def test_negotiated_never_worse_than_default(self, case):
        """The Pareto gate of continuous renegotiation guarantees this."""
        assert case.mel_negotiated_a <= case.mel_default_a + 1e-9
        assert case.mel_negotiated_b <= case.mel_default_b + 1e-9

    def test_optional_variants_present(self, case):
        assert case.mel_unilateral_a is not None
        assert case.mel_cheat_a is not None
        assert case.mel_diverse_a is not None
        assert case.diverse_downstream_gain_pct is not None

    def test_ratios(self, case):
        assert case.ratio_default_a() >= case.ratio_negotiated_a() - 1e-9
        assert case.ratio_unilateral_downstream_vs_default() is not None

    def test_affected_flow_count(self, case, pair):
        total = pair.isp_a.n_pops() * pair.isp_b.n_pops()
        assert 0 <= case.n_affected <= total

    def test_failed_city_named(self, case, pair):
        assert case.failed_city == pair.interconnections[0].city


class TestDegenerateFailure:
    """A failure that affects no flow returns the default MELs cleanly.

    Regression: the zero-flow sub-table used to be fed through the LP and
    the negotiation loop, reporting a bogus ``mel_opt_joint`` of 0.0 (the
    empty LP ignored the base loads).
    """

    @pytest.fixture()
    def degenerate(self, pair, config, workload):
        from dataclasses import replace

        from repro.experiments.bandwidth import _build_context

        context = _build_context(pair, workload)
        # Re-home every flow whose early-exit default is interconnection 0:
        # failing it then affects no flow at all.
        forced = np.asarray(context.default_pre).copy()
        forced[forced == 0] = 1
        context = replace(context, default_pre=forced)
        return run_bandwidth_case(
            context, 0, config,
            include_unilateral=True, include_cheating=True,
            include_diverse=True,
        )

    def test_no_affected_flows(self, degenerate):
        assert degenerate.n_affected == 0

    def test_every_method_keeps_default_mels(self, degenerate):
        r = degenerate
        assert r.mel_negotiated_a == r.mel_default_a
        assert r.mel_negotiated_b == r.mel_default_b
        assert r.mel_opt_a == r.mel_default_a
        assert r.mel_opt_b == r.mel_default_b
        assert r.mel_unilateral_a == r.mel_default_a
        assert r.mel_unilateral_b == r.mel_default_b
        assert r.mel_cheat_a == r.mel_default_a
        assert r.mel_cheat_b == r.mel_default_b
        assert r.mel_diverse_a == r.mel_default_a
        assert r.diverse_downstream_gain_pct == 0.0

    def test_joint_optimum_is_base_state(self, degenerate):
        assert degenerate.mel_opt_joint == max(
            degenerate.mel_default_a, degenerate.mel_default_b
        )
        assert degenerate.mel_opt_joint > 0


class TestCaseValidation:
    def test_two_ic_pair_rejected(self, dataset, config, workload):
        pairs = dataset.pairs(min_interconnections=2)
        two_ic = next(p for p in pairs if p.n_interconnections() == 2)
        with pytest.raises(ConfigurationError):
            run_bandwidth_case(two_ic, 0, config, workload)


class TestExperiment:
    @pytest.fixture(scope="class")
    def result(self, config):
        return run_bandwidth_experiment(config, include_unilateral=True)

    def test_case_count(self, result, config):
        assert 0 < len(result.cases) <= (
            config.max_pairs_bandwidth * config.max_failures_per_pair
        )

    def test_cdfs(self, result):
        for method, side in (("default", "a"), ("negotiated", "a"),
                             ("default", "b"), ("negotiated", "b")):
            cdf = result.cdf_ratio(method, side)
            assert len(cdf) == len(result.cases)
            assert cdf.min() > 0

    def test_unilateral_cdf(self, result):
        cdf = result.cdf_unilateral_downstream()
        assert len(cdf) == len(result.cases)

    def test_negotiated_beats_default_in_aggregate(self, result):
        assert (
            result.cdf_ratio("negotiated", "a").mean()
            <= result.cdf_ratio("default", "a").mean() + 1e-9
        )

    def test_deterministic(self, config):
        a = run_bandwidth_experiment(config)
        b = run_bandwidth_experiment(config)
        assert len(a.cases) == len(b.cases)
        for ca, cb in zip(a.cases, b.cases):
            assert ca.mel_negotiated_a == cb.mel_negotiated_a
            assert ca.mel_default_b == cb.mel_default_b
