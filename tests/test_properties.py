"""Cross-cutting property-based tests of the Nexit invariants.

These are the load-bearing guarantees of the paper, checked over randomized
instances with hypothesis:

1. win-win: with rollback, neither ISP ever ends below its default, on
   classes and on its true metric;
2. social soundness: under the max-combined policy the joint class gain is
   the sum of accepted combined gains, all positive;
3. cheating containment: a cheater can never push a truthful ISP below its
   default;
4. determinism: a session is a pure function of its inputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agent import NegotiationAgent
from repro.core.cheating import CheatingAgent
from repro.core.evaluators import StaticCostEvaluator, StaticPreferenceEvaluator
from repro.core.mapping import AutoScaleDeltaMapper
from repro.core.preferences import PreferenceRange
from repro.core.session import NegotiationSession, SessionConfig
from repro.core.strategies import (
    BestLocalProposals,
    CoinTossTurns,
    LowerGainTurns,
    TerminationMode,
)

instance_st = st.tuples(
    st.integers(0, 2**31 - 1),  # seed
    st.integers(1, 14),  # flows
    st.integers(2, 4),  # alternatives
    st.integers(1, 10),  # P
)


def _random_problem(seed, n_flows, n_alts, p):
    rng = np.random.default_rng(seed)
    prefs_a = rng.integers(-p, p + 1, size=(n_flows, n_alts))
    prefs_b = rng.integers(-p, p + 1, size=(n_flows, n_alts))
    defaults = rng.integers(0, n_alts, size=n_flows)
    rows = np.arange(n_flows)
    prefs_a[rows, defaults] = 0
    prefs_b[rows, defaults] = 0
    return prefs_a, prefs_b, defaults


def _session(prefs_a, prefs_b, defaults, p, config=None,
             term=TerminationMode.EARLY):
    range_ = PreferenceRange(p)
    return NegotiationSession(
        NegotiationAgent(
            "a", StaticPreferenceEvaluator(prefs_a, defaults, range_), term
        ),
        NegotiationAgent(
            "b", StaticPreferenceEvaluator(prefs_b, defaults, range_), term
        ),
        defaults=defaults,
        config=config,
    )


@settings(max_examples=60, deadline=None)
@given(instance_st)
def test_win_win_invariant(params):
    prefs_a, prefs_b, defaults = _random_problem(*params)
    out = _session(prefs_a, prefs_b, defaults, params[3]).run()
    assert out.gain_a >= 0
    assert out.gain_b >= 0


@settings(max_examples=60, deadline=None)
@given(instance_st)
def test_accepted_rounds_have_positive_combined_gain(params):
    prefs_a, prefs_b, defaults = _random_problem(*params)
    out = _session(prefs_a, prefs_b, defaults, params[3]).run()
    for record in out.accepted_rounds():
        # Static preferences: proposals require combined >= 1.
        assert record.combined >= 1
    assert out.gain_a + out.gain_b == sum(
        r.combined for r in out.accepted_rounds()
        if r.round_index not in out.rolled_back
    )


@settings(max_examples=60, deadline=None)
@given(instance_st)
def test_choices_are_valid_alternatives(params):
    prefs_a, prefs_b, defaults = _random_problem(*params)
    out = _session(prefs_a, prefs_b, defaults, params[3]).run()
    assert out.choices.min() >= 0
    assert out.choices.max() < prefs_a.shape[1]
    # Un-negotiated flows sit exactly at their defaults.
    untouched = ~out.negotiated
    assert np.array_equal(out.choices[untouched], defaults[untouched])


@settings(max_examples=40, deadline=None)
@given(instance_st)
def test_session_deterministic(params):
    prefs_a, prefs_b, defaults = _random_problem(*params)
    out1 = _session(prefs_a, prefs_b, defaults, params[3]).run()
    out2 = _session(prefs_a, prefs_b, defaults, params[3]).run()
    assert np.array_equal(out1.choices, out2.choices)
    assert out1.gain_a == out2.gain_a
    assert out1.reason == out2.reason


@settings(max_examples=40, deadline=None)
@given(instance_st)
def test_cheater_cannot_make_truthful_lose(params):
    prefs_a, prefs_b, defaults = _random_problem(*params)
    p = params[3]
    range_ = PreferenceRange(p)
    honest = NegotiationAgent(
        "b", StaticPreferenceEvaluator(prefs_b, defaults, range_)
    )
    cheater = CheatingAgent(
        "a", StaticPreferenceEvaluator(prefs_a, defaults, range_),
        opponent=honest, range_=range_,
    )
    out = NegotiationSession(cheater, honest, defaults=defaults).run()
    assert out.gain_b >= 0
    assert out.true_gain_b >= -1e-9


@settings(max_examples=30, deadline=None)
@given(instance_st)
def test_full_termination_negotiates_at_least_as_many(params):
    prefs_a, prefs_b, defaults = _random_problem(*params)
    p = params[3]
    cfg = SessionConfig(rollback=False)
    early = _session(prefs_a, prefs_b, defaults, p, config=cfg).run()
    cfg2 = SessionConfig(rollback=False)
    full = _session(prefs_a, prefs_b, defaults, p, config=cfg2,
                    term=TerminationMode.FULL).run()
    assert full.n_negotiated >= early.n_negotiated
    # Full termination maximizes joint welfare among the two modes.
    assert (full.gain_a + full.gain_b) >= (early.gain_a + early.gain_b)


@settings(max_examples=30, deadline=None)
@given(instance_st)
def test_alternate_policies_preserve_win_win(params):
    prefs_a, prefs_b, defaults = _random_problem(*params)
    p = params[3]
    for config in (
        SessionConfig(turn_policy=LowerGainTurns()),
        SessionConfig(turn_policy=CoinTossTurns(params[0])),
        SessionConfig(proposal_policy=BestLocalProposals()),
    ):
        out = _session(prefs_a, prefs_b, defaults, p, config=config).run()
        assert out.gain_a >= 0
        assert out.gain_b >= 0


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(2, 10), st.integers(2, 4))
def test_true_metric_win_win_with_cost_evaluators(seed, n_flows, n_alts):
    """End-to-end: auto-scaled cost mapping + rollback protect the metric."""
    rng = np.random.default_rng(seed)
    costs_a = rng.uniform(0, 500, size=(n_flows, n_alts))
    costs_b = rng.uniform(0, 500, size=(n_flows, n_alts))
    defaults = rng.integers(0, n_alts, size=n_flows)
    mapper = AutoScaleDeltaMapper(PreferenceRange(10), conservative=False,
                                  quantile=100.0)
    session = NegotiationSession(
        NegotiationAgent("a", StaticCostEvaluator(costs_a, defaults, mapper)),
        NegotiationAgent("b", StaticCostEvaluator(costs_b, defaults, mapper)),
        defaults=defaults,
    )
    out = session.run()
    rows = np.arange(n_flows)
    realized_a = costs_a[rows, defaults].sum() - costs_a[rows, out.choices].sum()
    realized_b = costs_b[rows, defaults].sum() - costs_b[rows, out.choices].sum()
    assert realized_a >= -1e-6
    assert realized_b >= -1e-6
    # The session's private ledger agrees with the realized metric.
    assert abs(realized_a - out.true_gain_a) < 1e-6
    assert abs(realized_b - out.true_gain_b) < 1e-6
