"""Tests for the Figure 5 baselines and grouped negotiation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.flow_strategies import (
    flow_both_better_choices,
    flow_pareto_choices,
)
from repro.baselines.grouped import grouped_negotiation_choices
from repro.core.mapping import AutoScaleDeltaMapper, delta_matrix
from repro.core.preferences import PreferenceRange
from repro.errors import ConfigurationError


def random_instance(seed, n_flows=10, n_alts=3):
    rng = np.random.default_rng(seed)
    cost_a = rng.uniform(0, 100, size=(n_flows, n_alts))
    cost_b = rng.uniform(0, 100, size=(n_flows, n_alts))
    defaults = rng.integers(0, n_alts, size=n_flows)
    return cost_a, cost_b, defaults


class TestFlowPareto:
    def test_never_picks_dominated(self):
        cost_a, cost_b, defaults = random_instance(1)
        choices = flow_pareto_choices(cost_a, cost_b, defaults, seed=2)
        da = delta_matrix(cost_a, defaults)
        db = delta_matrix(cost_b, defaults)
        for f, c in enumerate(choices):
            # Never an alternative strictly worse for both.
            assert not (da[f, c] < 0 and db[f, c] < 0)

    def test_deterministic_in_seed(self):
        cost_a, cost_b, defaults = random_instance(3)
        a = flow_pareto_choices(cost_a, cost_b, defaults, seed=5)
        b = flow_pareto_choices(cost_a, cost_b, defaults, seed=5)
        assert np.array_equal(a, b)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            flow_pareto_choices(np.zeros((2, 2)), np.zeros((3, 2)),
                                np.zeros(2, dtype=int))


class TestFlowBothBetter:
    def test_only_picks_win_win(self):
        cost_a, cost_b, defaults = random_instance(4)
        choices = flow_both_better_choices(cost_a, cost_b, defaults, seed=6)
        da = delta_matrix(cost_a, defaults)
        db = delta_matrix(cost_b, defaults)
        for f, c in enumerate(choices):
            assert da[f, c] >= 0 and db[f, c] >= 0

    def test_defaults_survive_when_nothing_better(self):
        # Any non-default alternative hurts someone: must stay at default.
        cost_a = np.array([[1.0, 0.5, 2.0]])
        cost_b = np.array([[1.0, 2.0, 0.5]])
        defaults = np.array([0])
        choices = flow_both_better_choices(cost_a, cost_b, defaults, seed=0)
        assert choices[0] == 0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_total_never_hurts_either_side(self, seed):
        cost_a, cost_b, defaults = random_instance(seed)
        choices = flow_both_better_choices(cost_a, cost_b, defaults, seed=seed)
        da = delta_matrix(cost_a, defaults)
        db = delta_matrix(cost_b, defaults)
        rows = np.arange(len(defaults))
        assert da[rows, choices].sum() >= -1e-9
        assert db[rows, choices].sum() >= -1e-9


class TestGroupedNegotiation:
    def _mappers(self):
        p = PreferenceRange(10)
        return (AutoScaleDeltaMapper(p, conservative=False, quantile=100.0),
                AutoScaleDeltaMapper(p, conservative=False, quantile=100.0))

    def test_one_group_equals_whole_table(self):
        cost_a, cost_b, defaults = random_instance(7)
        m_a, m_b = self._mappers()
        choices = grouped_negotiation_choices(
            cost_a, cost_b, defaults, m_a, m_b, n_groups=1, seed=1
        )
        assert choices.shape == defaults.shape

    def test_more_groups_never_gain_more_on_average(self):
        """The in-text claim: grouping reduces the achievable gain."""
        totals = {1: [], 5: []}
        for seed in range(12):
            cost_a, cost_b, defaults = random_instance(seed, n_flows=20)
            joint = cost_a + cost_b
            rows = np.arange(20)
            base = joint[rows, defaults].sum()
            for n_groups in (1, 5):
                m_a, m_b = self._mappers()
                choices = grouped_negotiation_choices(
                    cost_a, cost_b, defaults, m_a, m_b,
                    n_groups=n_groups, seed=seed,
                )
                totals[n_groups].append(base - joint[rows, choices].sum())
        assert np.mean(totals[1]) >= np.mean(totals[5]) - 1e-9

    def test_groups_exceeding_flows_clamped(self):
        cost_a, cost_b, defaults = random_instance(9, n_flows=3)
        m_a, m_b = self._mappers()
        choices = grouped_negotiation_choices(
            cost_a, cost_b, defaults, m_a, m_b, n_groups=10, seed=2
        )
        assert choices.shape == (3,)

    def test_bad_group_count(self):
        cost_a, cost_b, defaults = random_instance(10)
        m_a, m_b = self._mappers()
        with pytest.raises(ConfigurationError):
            grouped_negotiation_choices(
                cost_a, cost_b, defaults, m_a, m_b, n_groups=0
            )
