"""The TeaVAR-style failure-scenario enumerator."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.routing.scenarios import (
    FailureModel,
    affected_flow_indices,
    derive_scenario_tables,
    enumerate_failure_scenarios,
)


def _brute_force(probs_by_column, cutoff):
    """All failure subsets of independent columns, exact probabilities."""
    n = len(probs_by_column)
    expected = {}
    for r in range(n + 1):
        for combo in itertools.combinations(range(n), r):
            p = 1.0
            for c in range(n):
                p *= (
                    probs_by_column[c] if c in combo
                    else 1.0 - probs_by_column[c]
                )
            if p >= cutoff:
                expected[combo] = p
    return expected


class TestEnumeration:
    def test_matches_brute_force_uniform(self):
        model = FailureModel(link_probability=0.05, cutoff=1e-9)
        result = enumerate_failure_scenarios(4, model)
        expected = _brute_force([0.05] * 4, 1e-9)
        assert {s.failed: s.probability for s in result.scenarios} == {
            tuple(k): v for k, v in expected.items()
        }
        assert math.isclose(result.coverage, sum(expected.values()),
                            rel_tol=1e-12)

    def test_matches_brute_force_heterogeneous(self):
        # Mixed ratios exercise the descending-ratio pruning order.
        probs = (0.4, 0.01, 0.2, 0.001)
        model = FailureModel(link_probabilities=probs, cutoff=1e-7)
        result = enumerate_failure_scenarios(4, model)
        expected = _brute_force(list(probs), 1e-7)
        got = {s.failed: s.probability for s in result.scenarios}
        assert set(got) == set(expected)
        for failed, probability in got.items():
            # Bit-identical: both sides multiply in column-index order.
            assert probability == expected[failed]

    def test_cutoff_prunes_and_coverage_reports_the_gap(self):
        loose = enumerate_failure_scenarios(
            5, FailureModel(link_probability=0.1, cutoff=1e-12)
        )
        tight = enumerate_failure_scenarios(
            5, FailureModel(link_probability=0.1, cutoff=1e-3)
        )
        assert len(tight) < len(loose)
        assert all(s.probability >= 1e-3 for s in tight.scenarios)
        assert tight.coverage < loose.coverage <= 1.0 + 1e-12

    def test_canonical_order_and_determinism(self):
        model = FailureModel(link_probability=0.05, cutoff=1e-8)
        a = enumerate_failure_scenarios(4, model)
        b = enumerate_failure_scenarios(4, model)
        assert a == b  # bit-identical, same order
        keys = [(s.n_failed, s.failed) for s in a.scenarios]
        assert keys == sorted(keys)
        assert a.scenarios[0].failed == ()

    def test_max_failed_caps_simultaneous_units(self):
        result = enumerate_failure_scenarios(
            5, FailureModel(link_probability=0.2, cutoff=1e-12, max_failed=2)
        )
        assert max(s.n_failed for s in result.scenarios) == 2
        assert len(result) == 1 + 5 + 10

    def test_shared_risk_group_fails_as_a_unit(self):
        model = FailureModel(
            link_probability=0.05,
            shared_risk_groups=((0, 2),),
            group_probabilities=(0.1,),
            cutoff=1e-12,
        )
        result = enumerate_failure_scenarios(3, model)
        assert {s.failed for s in result.scenarios} == {
            (), (1,), (0, 2), (0, 1, 2)
        }
        got = {s.failed: s.probability for s in result.scenarios}
        assert math.isclose(got[(0, 2)], 0.1 * 0.95)
        assert math.isclose(got[(0, 1, 2)], 0.1 * 0.05)
        severed = next(
            s for s in result.scenarios if s.failed == (0, 1, 2)
        )
        assert severed.severs_all(3)
        assert not severed.severs_all(4)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"link_probability": 0.6},
            {"link_probability": 0.0},
            {"cutoff": 0.0},
            {"cutoff": 1.5},
            {"max_failed": -1},
            {"shared_risk_groups": ((0,), (0, 1))},  # overlapping groups
            {"shared_risk_groups": ((),)},  # empty group
            {"shared_risk_groups": ((0, 1),),
             "group_probabilities": (0.1, 0.2)},  # length mismatch
        ],
    )
    def test_bad_models_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FailureModel(**kwargs)

    def test_group_out_of_range_rejected_at_enumeration(self):
        model = FailureModel(shared_risk_groups=((0, 5),))
        with pytest.raises(ConfigurationError, match="outside"):
            enumerate_failure_scenarios(3, model)

    def test_link_probabilities_length_checked(self):
        model = FailureModel(link_probabilities=(0.1, 0.2))
        with pytest.raises(ConfigurationError, match="entries"):
            enumerate_failure_scenarios(3, model)


class TestScopeMapping:
    def test_affected_flows_are_exactly_the_failed_defaults(self):
        defaults = np.array([0, 1, 2, 1, 0, 2])
        model = FailureModel(link_probability=0.1, cutoff=1e-6)
        result = enumerate_failure_scenarios(3, model)
        scenario = next(s for s in result.scenarios if s.failed == (0, 2))
        assert affected_flow_indices(scenario, defaults).tolist() == [
            0, 2, 4, 5
        ]
        empty = next(s for s in result.scenarios if s.failed == ())
        assert affected_flow_indices(empty, defaults).size == 0


class TestDeriveScenarioTables:
    def test_batch_alignment_and_degenerate_entries(self, fig2):
        from repro.routing.costs import build_pair_cost_table
        from repro.routing.flows import build_full_flowset

        pair = fig2.pair
        table = build_pair_cost_table(pair, build_full_flowset(pair))
        model = FailureModel(link_probability=0.2, cutoff=1e-12)
        scenario_set = enumerate_failure_scenarios(
            pair.n_interconnections(), model
        )
        tables = derive_scenario_tables(table, scenario_set)
        assert len(tables) == len(scenario_set.scenarios)
        for scenario, derived in zip(scenario_set.scenarios, tables):
            if not scenario.failed:
                assert derived is table  # the all-up scenario is the parent
            elif scenario.severs_all(table.n_alternatives):
                assert derived is None  # graceful-degradation marker
            else:
                assert (
                    derived.n_alternatives
                    == table.n_alternatives - scenario.n_failed
                )

    def test_column_count_mismatch_rejected(self, fig2):
        from repro.routing.costs import build_pair_cost_table
        from repro.routing.flows import build_full_flowset

        pair = fig2.pair
        table = build_pair_cost_table(pair, build_full_flowset(pair))
        other = enumerate_failure_scenarios(
            table.n_alternatives + 1, FailureModel(link_probability=0.1)
        )
        with pytest.raises(ConfigurationError, match="columns"):
            derive_scenario_tables(table, other)
