"""Tests for the hand-built Figure 1 / Figure 2 scenarios."""

import pytest

from repro.errors import TopologyError
from repro.routing.paths import IntradomainRouting
from repro.topology.builders import (
    build_custom_isp,
    build_figure1_pair,
    build_figure2_pair,
    build_line_isp,
    build_mesh_isp,
)


class TestCustomBuilder:
    def test_lengths_default_to_weights(self):
        isp = build_custom_isp("c", [("A", 0, 0), ("B", 0, 1)], [(0, 1, 7.0)])
        assert isp.links[0].length_km == 7.0

    def test_lengths_override(self):
        isp = build_custom_isp(
            "c", [("A", 0, 0), ("B", 0, 1)], [(0, 1, 7.0)], lengths=[3.0]
        )
        assert isp.links[0].length_km == 3.0
        assert isp.links[0].weight == 7.0

    def test_lengths_mismatch(self):
        with pytest.raises(TopologyError):
            build_custom_isp(
                "c", [("A", 0, 0), ("B", 0, 1)], [(0, 1, 7.0)], lengths=[1.0, 2.0]
            )

    def test_line_needs_two(self):
        with pytest.raises(TopologyError):
            build_line_isp("l", ["A"])

    def test_mesh_needs_four(self):
        with pytest.raises(TopologyError):
            build_mesh_isp("m", ["A", "B", "C"])


class TestFigure1:
    def test_geometry(self, fig1):
        """The documented distances: direct 5, detour 8, end-to-end 13."""
        alpha = IntradomainRouting(fig1.pair.isp_a)
        beta = IntradomainRouting(fig1.pair.isp_b)
        # alpha: West-Center direct 5, Center-East detour 8.
        assert alpha.geo_distance_km(0, 1) == pytest.approx(5.0)
        assert alpha.geo_distance_km(1, 2) == pytest.approx(8.0)
        assert alpha.geo_distance_km(0, 2) == pytest.approx(13.0)
        # beta mirrors: West-Center 8, Center-East 5.
        assert beta.geo_distance_km(0, 1) == pytest.approx(8.0)
        assert beta.geo_distance_km(1, 2) == pytest.approx(5.0)

    def test_three_interconnections(self, fig1):
        assert fig1.pair.n_interconnections() == 3
        cities = {ic.city for ic in fig1.pair.interconnections}
        assert cities == {"West", "Center", "East"}

    def test_center_is_jointly_best(self, fig1):
        """Early exit costs 13 for one ISP; Center costs 5 + 5."""
        alpha = IntradomainRouting(fig1.pair.isp_a)
        beta = IntradomainRouting(fig1.pair.isp_b)
        src, dst = fig1.flow_a_to_b
        by_city = {ic.city: ic for ic in fig1.pair.interconnections}
        total = {
            city: alpha.geo_distance_km(src, ic.pop_a)
            + beta.geo_distance_km(ic.pop_b, dst)
            for city, ic in by_city.items()
        }
        assert total["Center"] == pytest.approx(10.0)
        assert total["West"] == pytest.approx(13.0)
        assert total["East"] == pytest.approx(13.0)


class TestFigure2:
    def test_structure(self, fig2):
        assert fig2.pair.n_interconnections() == 3
        assert fig2.failed_ic_index == 1
        assert fig2.pair.interconnections[1].city == "MidCity"

    def test_post_failure_pair(self, fig2):
        post = fig2.post_failure_pair
        assert post.n_interconnections() == 2
        assert {ic.city for ic in post.interconnections} == {
            "BotCity",
            "TopCity",
        }

    def test_capacities_cover_links(self, fig2):
        assert set(fig2.capacities_gamma) == {
            l.index for l in fig2.pair.isp_a.links
        }
        assert set(fig2.capacities_delta) == {
            l.index for l in fig2.pair.isp_b.links
        }

    def test_thin_uplink_present(self, fig2):
        # The asymmetry driving the example: s2 -> Top is thin.
        assert fig2.capacities_gamma[3] == 0.5

    def test_flows_reference_valid_pops(self, fig2):
        for _, src, dst in fig2.flows:
            fig2.pair.isp_a.pop(src)
            fig2.pair.isp_b.pop(dst)
