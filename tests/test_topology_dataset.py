"""Tests for repro.topology.dataset."""

import pytest

from repro.errors import ConfigurationError
from repro.topology.dataset import (
    DatasetConfig,
    IspDataset,
    build_default_dataset,
)
from repro.topology.generator import GeneratorConfig


class TestDatasetConfig:
    def test_defaults_are_papers(self):
        cfg = DatasetConfig()
        assert cfg.n_isps == 65

    def test_too_few_isps(self):
        with pytest.raises(ConfigurationError):
            DatasetConfig(n_isps=1)

    def test_empty_prefix(self):
        with pytest.raises(ConfigurationError):
            DatasetConfig(name_prefix="")


class TestBuild:
    def test_build_count(self, tiny_dataset):
        assert len(tiny_dataset) == 12

    def test_names_unique_and_prefixed(self, tiny_dataset):
        names = [isp.name for isp in tiny_dataset]
        assert len(set(names)) == len(names)
        assert all(name.startswith("isp") for name in names)

    def test_deterministic(self):
        cfg = DatasetConfig(n_isps=5, seed=9,
                            generator=GeneratorConfig(min_pops=4, max_pops=6))
        a = build_default_dataset(cfg)
        b = build_default_dataset(cfg)
        assert a.isps == b.isps

    def test_seed_override(self):
        cfg = DatasetConfig(n_isps=5, seed=9,
                            generator=GeneratorConfig(min_pops=4, max_pops=6))
        a = build_default_dataset(cfg)
        b = build_default_dataset(cfg, seed=10)
        assert a.isps != b.isps

    def test_get_by_name(self, tiny_dataset):
        isp = tiny_dataset.get("isp03")
        assert isp.name == "isp03"

    def test_get_unknown(self, tiny_dataset):
        with pytest.raises(ConfigurationError):
            tiny_dataset.get("nope")

    def test_mesh_partition(self, tiny_dataset):
        mesh = tiny_dataset.mesh_isps()
        non_mesh = tiny_dataset.non_mesh_isps()
        assert len(mesh) + len(non_mesh) == len(tiny_dataset)

    def test_summary_mentions_counts(self, tiny_dataset):
        assert "12 ISPs" in tiny_dataset.summary()


class TestPairs:
    def test_pairs_exclude_mesh(self, tiny_dataset):
        mesh_names = {isp.name for isp in tiny_dataset.mesh_isps()}
        for pair in tiny_dataset.pairs():
            assert pair.isp_a.name not in mesh_names
            assert pair.isp_b.name not in mesh_names

    def test_pairs_sorted_and_capped(self, tiny_dataset):
        pairs = tiny_dataset.pairs(max_pairs=3)
        assert len(pairs) <= 3
        names = [p.name for p in pairs]
        assert names == sorted(names)

    def test_min_interconnections_respected(self, tiny_dataset):
        for pair in tiny_dataset.pairs(min_interconnections=3):
            assert pair.n_interconnections() >= 3

    def test_bad_max_pairs(self, tiny_dataset):
        with pytest.raises(ConfigurationError):
            tiny_dataset.pairs(max_pairs=0)

    def test_three_ic_pairs_subset_of_two(self, tiny_dataset):
        two = {p.name for p in tiny_dataset.pairs(min_interconnections=2)}
        three = {p.name for p in tiny_dataset.pairs(min_interconnections=3)}
        assert three <= two


class TestValidation:
    def test_duplicate_names_rejected(self, tiny_dataset):
        isps = tiny_dataset.isps
        with pytest.raises(ConfigurationError):
            IspDataset(isps + [isps[0]], tiny_dataset.city_db,
                       tiny_dataset.config)

    def test_empty_rejected(self, tiny_dataset):
        with pytest.raises(ConfigurationError):
            IspDataset([], tiny_dataset.city_db, tiny_dataset.config)
