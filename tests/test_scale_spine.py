"""The scale-out core spine: batched SSSP, chunked builds, pluggable LPs.

Covers the PR 8 contracts end to end:

* the ``"csgraph"`` SSSP engine is bit-identical to ``"legacy"`` on every
  public routing surface (distances, paths, dense per-source views);
* ``build_scale_pair`` manufactures deterministic grid pairs beyond the
  city database's ~136-city ceiling;
* chunked table builds and the streaming block iterator are bit-identical
  to the monolithic batched build and to ``engine="legacy"`` across chunk
  sizes (Hypothesis property, satellite 3);
* disconnected PoPs surface as a typed :class:`RoutingError` naming the
  pair (satellite 2);
* the LP solver registry resolves, validates, injects, and falls back to
  dense assembly per backend capabilities, with the default backend
  bit-identical to the historical hardwired call;
* a 200-PoP-per-ISP pair flows through the whole spine — chunked build,
  early-exit defaults, failure, negotiation, joint and unilateral LPs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.capacity.loads import link_loads
from repro.capacity.provisioning import ProportionalCapacity
from repro.errors import ConfigurationError, RoutingError, TopologyError
from repro.experiments.bandwidth import _negotiate_bandwidth
from repro.experiments.config import ExperimentConfig
from repro.metrics.mel import max_excess_load
from repro.optimal.bandwidth_lp import solve_min_max_load_lp
from repro.optimal.solver import (
    DEFAULT_LP_SOLVER,
    LpSolution,
    LpSolver,
    SolverCapabilities,
    available_lp_solvers,
    register_lp_solver,
    resolve_lp_solver,
)
from repro.optimal.unilateral import solve_upstream_unilateral_lp
from repro.routing.costs import (
    DEFAULT_CHUNK_ROWS,
    build_pair_cost_table,
    iter_pair_cost_table_blocks,
)
from repro.routing.exits import early_exit_choices
from repro.routing.flows import Flow, FlowSet, build_full_flowset
from repro.routing.paths import SSSP_ENGINES, IntradomainRouting
from repro.topology.builders import build_scale_pair


def _assert_tables_equal(left, right) -> None:
    """Bit-exact equality over every array and ragged row of two tables."""
    for name in ("up_weight", "down_weight", "up_km", "down_km", "ic_km"):
        a, b = getattr(left, name), getattr(right, name)
        assert a.shape == b.shape
        assert np.array_equal(a, b), name
    for name in ("up_links", "down_links"):
        a, b = getattr(left, name), getattr(right, name)
        assert len(a) == len(b)
        for row_a, row_b in zip(a, b):
            assert len(row_a) == len(row_b)
            for cell_a, cell_b in zip(row_a, row_b):
                assert np.array_equal(cell_a, cell_b), name


def _strided_flowset(pair, target_flows: int) -> FlowSet:
    """A deterministic subsample of the full (src, dst) flow mesh."""
    n_a, n_b = pair.isp_a.n_pops(), pair.isp_b.n_pops()
    total = n_a * n_b
    stride = max(1, total // target_flows)
    flows = []
    for index, flat in enumerate(range(0, total, stride)):
        src, dst = divmod(flat, n_b)
        flows.append(
            Flow(index=index, src=src, dst=dst, size=1.0 + (flat % 7) * 0.25)
        )
    return FlowSet(pair, flows)


# ---------------------------------------------------------------------------
# csgraph SSSP engine
# ---------------------------------------------------------------------------


class TestCsgraphEngine:
    def test_unknown_engine_rejected(self, fig1):
        with pytest.raises(ConfigurationError, match="engine"):
            IntradomainRouting(fig1.pair.isp_a, engine="dijkstra2000")

    def test_engine_property_and_default(self, fig1):
        assert IntradomainRouting(fig1.pair.isp_a).engine == "csgraph"
        assert IntradomainRouting(fig1.pair.isp_a, engine="legacy").engine == "legacy"
        assert SSSP_ENGINES == ("csgraph", "legacy")

    def test_bit_identical_on_figure1_pair(self, fig1):
        for isp in (fig1.pair.isp_a, fig1.pair.isp_b):
            self._assert_engines_identical(isp)

    def test_distances_identical_under_ties(self, fig2):
        # Figure 2's hand-built integer weights contain equal-cost ties —
        # the one case where the engines may legitimately route different
        # (equally short) paths. Distances must still agree exactly.
        for isp in (fig2.pair.isp_a, fig2.pair.isp_b):
            fast = IntradomainRouting(isp, engine="csgraph")
            slow = IntradomainRouting(isp, engine="legacy")
            for src in range(isp.n_pops()):
                assert fast.distances_to_all(src) == slow.distances_to_all(src)

    def test_bit_identical_on_scale_pair(self):
        pair = build_scale_pair(60, n_interconnections=5, seed=9)
        for isp in (pair.isp_a, pair.isp_b):
            self._assert_engines_identical(isp)

    @staticmethod
    def _assert_engines_identical(isp) -> None:
        fast = IntradomainRouting(isp, engine="csgraph")
        slow = IntradomainRouting(isp, engine="legacy")
        sources = range(isp.n_pops())
        fast.warm(sources)  # one batched csgraph call for all sources
        slow.warm(sources)
        for src in sources:
            d_fast = fast.distances_to_all(src)
            d_slow = slow.distances_to_all(src)
            assert d_fast == d_slow  # exact float equality, same key set
            assert np.array_equal(
                fast.weight_distance_array(src),
                slow.weight_distance_array(src),
                equal_nan=True,
            )
            assert np.array_equal(
                fast.geo_distance_array(src),
                slow.geo_distance_array(src),
                equal_nan=True,
            )
            for dst in range(isp.n_pops()):
                assert fast.path(src, dst) == slow.path(src, dst)
                assert np.array_equal(
                    fast.path_links(src, dst), slow.path_links(src, dst)
                )

    def test_lazy_single_source_matches_warm_batch(self):
        pair = build_scale_pair(30, n_interconnections=3, seed=4)
        lazy = IntradomainRouting(pair.isp_a)
        warm = IntradomainRouting(pair.isp_a)
        warm.warm(range(pair.isp_a.n_pops()))
        for src in (0, 7, 29):
            assert lazy.distances_to_all(src) == warm.distances_to_all(src)

    def test_invalid_source_still_rejected(self, fig1):
        routing = IntradomainRouting(fig1.pair.isp_a)
        with pytest.raises(TopologyError):
            routing.warm([fig1.pair.isp_a.n_pops() + 3])


class TestLinkCsr:
    def test_symmetric_and_matches_link_weights(self, fig1):
        isp = fig1.pair.isp_a
        dense = isp.link_csr().toarray()
        assert np.array_equal(dense, dense.T)
        for link in isp.links:
            assert dense[link.u, link.v] == link.weight
        assert dense.diagonal().sum() == 0.0

    def test_compiled_once_and_read_only(self, fig1):
        isp = fig1.pair.isp_b
        matrix = isp.link_csr()
        assert isp.link_csr() is matrix
        assert not matrix.data.flags.writeable

    def test_non_positive_weight_rejected(self):
        pair = build_scale_pair(6, n_interconnections=2, seed=0)
        isp = pair.isp_a
        # Link validates weight > 0 at construction, so a zero weight can
        # only arrive via mutation — exactly the corruption the compile
        # guard exists to catch (csgraph drops stored zeros silently).
        object.__setattr__(isp.links[0], "weight", 0.0)
        with pytest.raises(TopologyError, match="non-positive"):
            isp.link_csr()


class TestBuildScalePair:
    def test_structure(self):
        pair = build_scale_pair(200, n_interconnections=6, seed=1)
        assert pair.isp_a.n_pops() == 200
        assert pair.isp_b.n_pops() == 200
        assert pair.n_interconnections() == 6
        for ic in pair.interconnections:
            assert ic.pop_a == ic.pop_b  # same grid city on both sides

    def test_deterministic_per_seed(self):
        one = build_scale_pair(40, n_interconnections=4, seed=7)
        two = build_scale_pair(40, n_interconnections=4, seed=7)
        other = build_scale_pair(40, n_interconnections=4, seed=8)
        weights = lambda isp: [link.weight for link in isp.links]
        assert weights(one.isp_a) == weights(two.isp_a)
        assert weights(one.isp_b) == weights(two.isp_b)
        assert weights(one.isp_a) != weights(other.isp_a)
        # Per-ISP jitter differs so shortest paths stay unique per side.
        assert weights(one.isp_a) != weights(one.isp_b)

    def test_validation(self):
        with pytest.raises(TopologyError):
            build_scale_pair(1)
        with pytest.raises(TopologyError):
            build_scale_pair(10, n_interconnections=0)
        with pytest.raises(TopologyError):
            build_scale_pair(10, n_interconnections=11)


# ---------------------------------------------------------------------------
# chunked builds == monolithic builds == legacy (satellite 3)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def chunk_pair():
    return build_scale_pair(12, n_interconnections=3, seed=5)


@pytest.fixture(scope="module")
def chunk_flowset(chunk_pair):
    return build_full_flowset(
        chunk_pair, lambda src, dst: 1.0 + ((src * 31 + dst) % 5) * 0.5
    )


@pytest.fixture(scope="module")
def chunk_tables(chunk_pair, chunk_flowset):
    """(legacy, batched) reference tables over shared routing caches."""
    routing_a = IntradomainRouting(chunk_pair.isp_a)
    routing_b = IntradomainRouting(chunk_pair.isp_b)
    legacy = build_pair_cost_table(
        chunk_pair, chunk_flowset, routing_a, routing_b, engine="legacy"
    )
    batched = build_pair_cost_table(
        chunk_pair, chunk_flowset, routing_a, routing_b, engine="batched"
    )
    return legacy, batched


class TestChunkedBuildEquivalence:
    def test_batched_matches_legacy(self, chunk_tables):
        legacy, batched = chunk_tables
        _assert_tables_equal(legacy, batched)

    @given(chunk_rows=st.integers(min_value=1, max_value=200))
    @example(chunk_rows=1)  # one flow per block
    @example(chunk_rows=7)  # non-divisor of 144
    @example(chunk_rows=144)  # exactly F: single full block
    @example(chunk_rows=200)  # > F: single short block
    @settings(max_examples=25, deadline=None)
    def test_chunked_matches_monolithic_and_legacy(
        self, chunk_pair, chunk_flowset, chunk_tables, chunk_rows
    ):
        legacy, batched = chunk_tables
        chunked = build_pair_cost_table(
            chunk_pair,
            chunk_flowset,
            engine="chunked",
            chunk_rows=chunk_rows,
        )
        _assert_tables_equal(chunked, batched)
        _assert_tables_equal(chunked, legacy)

    @given(chunk_rows=st.integers(min_value=1, max_value=200))
    @example(chunk_rows=1)
    @example(chunk_rows=11)
    @example(chunk_rows=144)
    @settings(max_examples=10, deadline=None)
    def test_streaming_blocks_match_subsets(
        self, chunk_pair, chunk_flowset, chunk_tables, chunk_rows
    ):
        _, batched = chunk_tables
        n_f = len(chunk_flowset)
        lo = 0
        for block in iter_pair_cost_table_blocks(
            chunk_pair, chunk_flowset, chunk_rows=chunk_rows
        ):
            hi = min(lo + chunk_rows, n_f)
            expected = batched.subset(np.arange(lo, hi, dtype=np.intp))
            _assert_tables_equal(block, expected)
            assert np.array_equal(
                block.flowset.sizes(), expected.flowset.sizes()
            )
            lo = hi
        assert lo == n_f  # every flow streamed exactly once

    def test_iter_blocks_round_trip(self, chunk_tables):
        _, batched = chunk_tables
        blocks = list(batched.iter_blocks(chunk_rows=50))
        assert [b.n_flows for b in blocks] == [50, 50, 44]
        assert np.array_equal(
            np.concatenate([b.up_weight for b in blocks]), batched.up_weight
        )

    def test_default_chunk_rows(self, chunk_pair, chunk_flowset, chunk_tables):
        _, batched = chunk_tables
        assert DEFAULT_CHUNK_ROWS >= 1
        chunked = build_pair_cost_table(chunk_pair, chunk_flowset, engine="chunked")
        _assert_tables_equal(chunked, batched)

    def test_bad_chunk_rows_rejected(self, chunk_pair, chunk_flowset):
        with pytest.raises(ConfigurationError, match="chunk_rows"):
            build_pair_cost_table(
                chunk_pair, chunk_flowset, engine="chunked", chunk_rows=0
            )
        with pytest.raises(ConfigurationError, match="chunk_rows"):
            list(iter_pair_cost_table_blocks(chunk_pair, chunk_flowset, chunk_rows=-3))

    def test_bad_table_chunk_rejected(self, chunk_tables):
        _, batched = chunk_tables
        with pytest.raises(ConfigurationError, match="chunk_rows"):
            list(batched.iter_blocks(chunk_rows=0))


# ---------------------------------------------------------------------------
# disconnected PoPs raise a typed, pair-naming error (satellite 2)
# ---------------------------------------------------------------------------


class TestUnreachableDiagnostics:
    @pytest.fixture()
    def poisoned(self, monkeypatch):
        """A routing pair where upstream PoP 2 looks unreachable."""
        pair = build_scale_pair(9, n_interconnections=3, seed=2)
        flowset = build_full_flowset(pair)
        routing_a = IntradomainRouting(pair.isp_a)
        routing_b = IntradomainRouting(pair.isp_b)
        real = IntradomainRouting.weight_distance_array

        def poisoned_view(self, src):
            arr = real(self, src).copy()
            arr[2] = np.inf
            return arr

        monkeypatch.setattr(
            routing_a, "weight_distance_array", poisoned_view.__get__(routing_a)
        )
        return pair, flowset, routing_a, routing_b

    @pytest.mark.parametrize("engine", ["batched", "chunked"])
    def test_build_names_pair_and_pops(self, poisoned, engine):
        pair, flowset, routing_a, routing_b = poisoned
        with pytest.raises(RoutingError) as err:
            build_pair_cost_table(pair, flowset, routing_a, routing_b, engine=engine)
        message = str(err.value)
        assert f"pair {pair.name}" in message
        assert pair.isp_a.name in message
        assert "source PoPs [2]" in message

    def test_streaming_build_names_pair(self, poisoned):
        pair, flowset, routing_a, routing_b = poisoned
        with pytest.raises(RoutingError, match=f"pair {pair.name}"):
            list(
                iter_pair_cost_table_blocks(
                    pair, flowset, routing_a=routing_a, routing_b=routing_b
                )
            )


# ---------------------------------------------------------------------------
# LP solver registry and injection
# ---------------------------------------------------------------------------


class _RecordingSolver(LpSolver):
    """Delegates to the default backend, recording what it was handed."""

    def __init__(self, name="recording", sparse_constraints=True):
        self.name = name
        self.capabilities = SolverCapabilities(
            sparse_constraints=sparse_constraints
        )
        self.problems = []
        self._inner = resolve_lp_solver(DEFAULT_LP_SOLVER)

    def solve(self, problem) -> LpSolution:
        self.problems.append(problem)
        return self._inner.solve(problem)


@pytest.fixture(scope="module")
def lp_setup():
    """A small scale pair with early-exit defaults and capacities."""
    pair = build_scale_pair(9, n_interconnections=3, seed=3)
    table = build_pair_cost_table(pair, build_full_flowset(pair))
    defaults = early_exit_choices(table)
    caps_a = ProportionalCapacity().capacities(link_loads(table, defaults, "a"))
    caps_b = ProportionalCapacity().capacities(link_loads(table, defaults, "b"))
    return table, defaults, caps_a, caps_b


class TestSolverRegistry:
    def test_default_is_first_and_highs(self):
        names = available_lp_solvers()
        assert names[0] == DEFAULT_LP_SOLVER == "highs"
        assert {"highs-ds", "highs-ipm"} <= set(names)

    def test_resolution(self):
        default = resolve_lp_solver(None)
        assert default.name == DEFAULT_LP_SOLVER
        assert resolve_lp_solver("highs-ds").name == "highs-ds"
        injected = _RecordingSolver()
        assert resolve_lp_solver(injected) is injected

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="highs"):
            resolve_lp_solver("cplex")

    def test_registration_rules(self):
        from repro.optimal import solver as solver_module

        with pytest.raises(ConfigurationError, match="concrete name"):
            register_lp_solver(LpSolver())
        probe = _RecordingSolver(name="probe-backend")
        try:
            register_lp_solver(probe)
            assert "probe-backend" in available_lp_solvers()
            with pytest.raises(ConfigurationError, match="already registered"):
                register_lp_solver(_RecordingSolver(name="probe-backend"))
            replacement = _RecordingSolver(name="probe-backend")
            assert (
                register_lp_solver(replacement, replace=True) is replacement
            )
            assert resolve_lp_solver("probe-backend") is replacement
        finally:
            solver_module._REGISTRY.pop("probe-backend", None)


class TestSolverInjection:
    def test_injected_solver_matches_default(self, lp_setup):
        table, _, caps_a, caps_b = lp_setup
        reference = solve_min_max_load_lp(table, caps_a, caps_b)
        recorder = _RecordingSolver()
        injected = solve_min_max_load_lp(table, caps_a, caps_b, solver=recorder)
        assert len(recorder.problems) == 1
        assert injected.t == reference.t
        assert np.array_equal(injected.fractions, reference.fractions)

    def test_dense_fallback_for_limited_backends(self, lp_setup):
        table, _, caps_a, caps_b = lp_setup
        reference = solve_min_max_load_lp(table, caps_a, caps_b)
        dense = _RecordingSolver(name="dense", sparse_constraints=False)
        result = solve_min_max_load_lp(table, caps_a, caps_b, solver=dense)
        problem = dense.problems[0]
        assert isinstance(problem.a_ub, np.ndarray)
        assert isinstance(problem.a_eq, np.ndarray)
        assert result.t == pytest.approx(reference.t, abs=1e-9)

    def test_cross_backend_objectives_agree(self, lp_setup):
        table, _, caps_a, caps_b = lp_setup
        reference = solve_min_max_load_lp(table, caps_a, caps_b)
        for name in ("highs-ds", "highs-ipm"):
            other = solve_min_max_load_lp(table, caps_a, caps_b, solver=name)
            assert other.t == pytest.approx(reference.t, rel=1e-7, abs=1e-9)

    def test_unilateral_lp_threads_solver(self, lp_setup):
        table, _, caps_a, caps_b = lp_setup
        reference = solve_upstream_unilateral_lp(table, caps_a, caps_b)
        recorder = _RecordingSolver()
        injected = solve_upstream_unilateral_lp(
            table, caps_a, caps_b, solver=recorder
        )
        assert len(recorder.problems) == 1
        assert injected.t == reference.t

    def test_unknown_solver_name_at_call_site(self, lp_setup):
        table, _, caps_a, caps_b = lp_setup
        with pytest.raises(ConfigurationError, match="solver"):
            solve_min_max_load_lp(table, caps_a, caps_b, solver="gurobi")


class TestConfigThreading:
    def test_config_validates_solver_and_engine(self):
        with pytest.raises(ConfigurationError, match="lp_solver"):
            ExperimentConfig(lp_solver="gurobi")
        with pytest.raises(ConfigurationError, match="routing_engine"):
            ExperimentConfig(routing_engine="bfs")
        config = ExperimentConfig(lp_solver="highs-ds", routing_engine="legacy")
        assert config.lp_solver == "highs-ds"
        assert config.routing_engine == "legacy"

    def test_quick_defaults(self):
        config = ExperimentConfig.quick()
        assert config.lp_solver == DEFAULT_LP_SOLVER
        assert config.routing_engine == "csgraph"


# ---------------------------------------------------------------------------
# production-scale end-to-end (acceptance)
# ---------------------------------------------------------------------------


def _run_scale_spine(n_pops: int, target_flows: int, chunk_rows: int):
    """Build -> fail -> negotiate -> joint + unilateral LPs at scale."""
    pair = build_scale_pair(n_pops, n_interconnections=6, seed=11)
    routing_a = IntradomainRouting(pair.isp_a)
    routing_b = IntradomainRouting(pair.isp_b)
    flowset = _strided_flowset(pair, target_flows)
    table = build_pair_cost_table(
        pair, flowset, routing_a, routing_b, engine="chunked", chunk_rows=chunk_rows
    )
    assert table.up_weight.shape == (len(flowset), 6)
    assert np.isfinite(table.up_weight).all()
    assert np.isfinite(table.down_weight).all()

    defaults = early_exit_choices(table)
    caps_a = ProportionalCapacity().capacities(link_loads(table, defaults, "a"))
    caps_b = ProportionalCapacity().capacities(link_loads(table, defaults, "b"))

    # Fail the busiest interconnection so a real negotiation scope exists.
    failed = int(np.bincount(defaults, minlength=6).argmax())
    table_post = table.without_alternative(failed)
    assert table_post.n_alternatives == 5
    default_post = early_exit_choices(table_post)
    affected_idx = np.flatnonzero(defaults == failed)
    assert affected_idx.size > 0
    active = np.ones(len(flowset), dtype=bool)
    active[affected_idx] = False
    base_a = link_loads(table_post, default_post, "a", active=active)
    base_b = link_loads(table_post, default_post, "b", active=active)

    sub_table = table_post.subset(affected_idx)
    defaults_sub = default_post[affected_idx]
    config = ExperimentConfig.quick()

    choices = _negotiate_bandwidth(
        sub_table, defaults_sub, caps_a, caps_b, base_a, base_b, config
    )
    assert choices.shape == defaults_sub.shape
    assert np.all((choices >= 0) & (choices < 5))
    mel_neg = max(
        max_excess_load(link_loads(sub_table, choices, "a", base=base_a), caps_a),
        max_excess_load(link_loads(sub_table, choices, "b", base=base_b), caps_b),
    )

    lp = solve_min_max_load_lp(
        sub_table, caps_a, caps_b, base_a, base_b, solver=config.lp_solver
    )
    assert lp.fractions.shape == (affected_idx.size, 5)
    assert np.allclose(lp.fractions.sum(axis=1), 1.0, atol=1e-8)
    # The fractional joint optimum lower-bounds any integral negotiation.
    assert lp.t <= mel_neg + 1e-9

    uni = solve_upstream_unilateral_lp(
        sub_table, caps_a, caps_b, base_a, base_b, solver=config.lp_solver
    )
    assert np.isfinite(uni.t) and uni.t >= 0.0
    return lp.t, mel_neg


class TestScaleEndToEnd:
    def test_200_pop_pair_spine(self):
        """Acceptance: a 200-PoP-per-ISP pair crosses the whole new spine."""
        opt_t, neg_mel = _run_scale_spine(
            n_pops=200, target_flows=1200, chunk_rows=257
        )
        assert np.isfinite(opt_t) and opt_t >= 0.0
        assert np.isfinite(neg_mel)

    @pytest.mark.slow
    def test_300_pop_pair_spine_slow(self):
        opt_t, neg_mel = _run_scale_spine(
            n_pops=300, target_flows=4000, chunk_rows=512
        )
        assert np.isfinite(opt_t) and opt_t >= 0.0
        assert np.isfinite(neg_mel)

    @pytest.mark.slow
    def test_scale_pair_engines_identical_slow(self):
        pair = build_scale_pair(300, n_interconnections=6, seed=11)
        flowset = _strided_flowset(pair, 4000)
        fast = build_pair_cost_table(pair, flowset)
        legacy_a = IntradomainRouting(pair.isp_a, engine="legacy")
        legacy_b = IntradomainRouting(pair.isp_b, engine="legacy")
        slow = build_pair_cost_table(pair, flowset, legacy_a, legacy_b)
        _assert_tables_equal(fast, slow)
