"""Tests for repro.capacity.loads."""

import numpy as np
import pytest

from repro.capacity.loads import LoadTracker, link_loads, pair_link_loads
from repro.errors import CapacityError
from repro.routing.costs import build_pair_cost_table
from repro.routing.exits import early_exit_choices
from repro.routing.flows import build_full_flowset


@pytest.fixture()
def table(small_pair):
    return build_pair_cost_table(
        small_pair, build_full_flowset(small_pair, size_fn=lambda s, d: s + 1.0)
    )


class TestLinkLoads:
    def test_conservation(self, table):
        """Total load = sum over flows of size * hops."""
        choices = early_exit_choices(table)
        loads = link_loads(table, choices, "a")
        expected = 0.0
        for flow in table.flowset:
            expected += flow.size * len(table.up_links[flow.index][choices[flow.index]])
        assert loads.sum() == pytest.approx(expected)

    def test_both_sides(self, table):
        choices = early_exit_choices(table)
        la, lb = pair_link_loads(table, choices)
        assert la.shape == (table.pair.isp_a.n_links(),)
        assert lb.shape == (table.pair.isp_b.n_links(),)

    def test_active_mask(self, table):
        choices = early_exit_choices(table)
        full = link_loads(table, choices, "a")
        none = link_loads(table, choices, "a",
                          active=np.zeros(table.n_flows, dtype=bool))
        assert np.allclose(none, 0.0)
        half_mask = np.arange(table.n_flows) % 2 == 0
        half = link_loads(table, choices, "a", active=half_mask)
        other = link_loads(table, choices, "a", active=~half_mask)
        assert np.allclose(half + other, full)

    def test_base_seeds_accumulation(self, table):
        """Seeded accumulation: base + masked flows, both engines bit-equal."""
        choices = early_exit_choices(table)
        mask = np.arange(table.n_flows) % 2 == 0
        base = link_loads(table, choices, "a", active=~mask)
        seeded = link_loads(table, choices, "a", active=mask, base=base)
        seeded_legacy = link_loads(
            table, choices, "a", active=mask, base=base, engine="legacy"
        )
        assert np.array_equal(seeded, seeded_legacy)
        assert np.allclose(seeded, link_loads(table, choices, "a"))
        # base with no active flows passes through exactly.
        none = link_loads(
            table, choices, "a", active=np.zeros(table.n_flows, bool), base=base
        )
        assert np.array_equal(none, base)

    def test_base_shape_validated(self, table):
        with pytest.raises(CapacityError):
            link_loads(table, early_exit_choices(table), "a", base=np.zeros(3))

    def test_bad_side(self, table):
        with pytest.raises(CapacityError):
            link_loads(table, early_exit_choices(table), "x")

    def test_bad_choices_shape(self, table):
        with pytest.raises(CapacityError):
            link_loads(table, np.zeros(3, dtype=int), "a")

    def test_out_of_range_choice(self, table):
        bad = np.full(table.n_flows, 99, dtype=int)
        with pytest.raises(CapacityError):
            link_loads(table, bad, "a")


class TestLoadTracker:
    def test_place_remove_roundtrip(self, table):
        tracker = LoadTracker(table, "a")
        before = tracker.loads
        tracker.place(0, 1)
        tracker.remove(0, 1)
        assert np.allclose(tracker.loads, before)

    def test_place_accumulates(self, table):
        tracker = LoadTracker(table, "a")
        tracker.place(3, 1)
        links = table.up_links[3][1]
        loads = tracker.loads
        for li in links:
            assert loads[li] == pytest.approx(table.flowset[3].size)

    def test_base_loads(self, table):
        base = np.ones(table.pair.isp_a.n_links())
        tracker = LoadTracker(table, "a", base_loads=base)
        assert np.allclose(tracker.loads, 1.0)

    def test_base_loads_shape_checked(self, table):
        wrong_length = table.pair.isp_a.n_links() + 1
        with pytest.raises(CapacityError):
            LoadTracker(table, "a", base_loads=np.ones(wrong_length))

    def test_loads_property_is_copy(self, table):
        tracker = LoadTracker(table, "a")
        snapshot = tracker.loads
        snapshot[:] = 99.0
        assert not np.allclose(tracker.loads, 99.0)

    def test_peek_max_ratio(self, table):
        caps = np.full(table.pair.isp_a.n_links(), 2.0)
        tracker = LoadTracker(table, "a")
        flow = next(f for f in table.flowset if f.src != 0)  # non-empty path
        choice = 0
        links = table.up_links[flow.index][choice]
        if len(links) == 0:
            choice = 1
            links = table.up_links[flow.index][choice]
        ratio = tracker.peek_max_ratio(flow.index, choice, caps)
        assert ratio == pytest.approx(flow.size / 2.0)

    def test_peek_empty_path_is_zero(self, table):
        caps = np.full(table.pair.isp_a.n_links(), 2.0)
        tracker = LoadTracker(table, "a")
        colocated = next(
            f for f in table.flowset
            if len(table.up_links[f.index][0]) == 0
        )
        assert tracker.peek_max_ratio(colocated.index, 0, caps) == 0.0

    def test_peek_does_not_mutate(self, table):
        caps = np.full(table.pair.isp_a.n_links(), 2.0)
        tracker = LoadTracker(table, "a")
        before = tracker.loads
        tracker.peek_max_ratio(1, 1, caps)
        assert np.allclose(tracker.loads, before)

    def test_bad_side(self, table):
        with pytest.raises(CapacityError):
            LoadTracker(table, "z")
