"""Tests for the cycle-of-influence simulator."""

import numpy as np
import pytest

from repro.core import (
    NegotiationAgent,
    NegotiationSession,
    PreferenceRange,
    SessionConfig,
)
from repro.core.evaluators import LoadAwareEvaluator
from repro.core.strategies import ReassignEveryFraction
from repro.errors import ConfigurationError
from repro.experiments.oscillation import simulate_best_response
from repro.routing.costs import build_pair_cost_table
from repro.routing.flows import Flow, FlowSet


@pytest.fixture()
def fig2_setup(fig2):
    post = fig2.post_failure_pair
    flows = [Flow(index=i, src=s, dst=d)
             for i, (_, s, d) in enumerate(fig2.flows)]
    table = build_pair_cost_table(post, FlowSet(post, flows))
    caps_a = np.asarray([fig2.capacities_gamma[l.index]
                         for l in post.isp_a.links])
    caps_b = np.asarray([fig2.capacities_delta[l.index]
                         for l in post.isp_b.links])
    bg = [Flow(index=i, src=s, dst=d)
          for i, (_, s, d, _) in enumerate(fig2.background_flows)]
    bg_table = build_pair_cost_table(post, FlowSet(post, bg))
    from repro.capacity.loads import link_loads

    base_a = link_loads(bg_table, np.array([1, 0]), "a")
    base_b = link_loads(bg_table, np.array([1, 0]), "b")
    defaults = np.array([0, 0])  # both affected flows pile onto Bot
    return table, defaults, caps_a, caps_b, base_a, base_b


class TestFigure2Oscillation:
    def test_unilateral_reactions_cycle(self, fig2_setup):
        """The Section 2.2 incident: selfish reactions revisit a state."""
        result = simulate_best_response(*fig2_setup, max_steps=30)
        assert result.cycled
        assert not result.stable
        assert result.n_steps >= 2
        # The tug-of-war is over flow f2 (index 0), shuttled between the
        # two interconnections by the two ISPs in turn.
        moved = {s.flow_index for s in result.steps}
        assert 0 in moved

    def test_negotiated_agreement_is_stable(self, fig2_setup):
        """Starting from the Nexit agreement, neither ISP wants to move."""
        table, defaults, caps_a, caps_b, base_a, base_b = fig2_setup
        p1 = PreferenceRange(1)
        ev_a = LoadAwareEvaluator(table, "a", caps_a, defaults,
                                  base_loads=base_a, range_=p1,
                                  ratio_unit=0.25)
        ev_b = LoadAwareEvaluator(table, "b", caps_b, defaults,
                                  base_loads=base_b, range_=p1,
                                  ratio_unit=0.25)
        session = NegotiationSession(
            NegotiationAgent("gamma", ev_a),
            NegotiationAgent("delta", ev_b),
            defaults=defaults,
            config=SessionConfig(
                reassignment_policy=ReassignEveryFraction(0.5)
            ),
        )
        agreed = session.run().choices
        result = simulate_best_response(
            table, agreed, caps_a, caps_b, base_a, base_b, max_steps=30
        )
        assert result.stable
        assert not result.cycled
        assert np.array_equal(result.final_choices, agreed)


class TestSimulatorMechanics:
    def test_max_steps_validated(self, fig2_setup):
        with pytest.raises(ConfigurationError):
            simulate_best_response(*fig2_setup, max_steps=0)

    def test_steps_record_mels(self, fig2_setup):
        result = simulate_best_response(*fig2_setup, max_steps=30)
        for step in result.steps:
            assert step.mel_a > 0 and step.mel_b > 0
            assert step.actor in (0, 1)

    def test_deterministic(self, fig2_setup):
        a = simulate_best_response(*fig2_setup, max_steps=30)
        b = simulate_best_response(*fig2_setup, max_steps=30)
        assert a.cycled == b.cycled
        assert [s.flow_index for s in a.steps] == [s.flow_index for s in b.steps]
