"""The multi_isp sweep: worker invariance, checkpoint/resume, CLI."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.internetwork import (
    MULTI_ISP_SCENARIO,
    run_multi_isp,
    run_multi_isp_experiment,
)
from repro.experiments.runner import CheckpointStore, sweep_fingerprint


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig.quick()


@pytest.fixture(scope="module")
def serial_result(config):
    return run_multi_isp_experiment(config, n_isps=3, rounds=3)


_PARAMS = dict(MULTI_ISP_SCENARIO.default_params)
_PARAMS.update(n_isps=3, rounds=3)


class TestAggregate:
    def test_grid_shape(self, serial_result):
        result = serial_result
        assert result.n_rounds == 3
        assert len(result.records) == 3 * len(result.edge_names)
        assert len(result.mel_trajectory()) == 3

    def test_trajectory_reports_relief(self, serial_result):
        result = serial_result
        assert result.initial_mel > 0
        assert result.final_mel <= result.initial_mel
        assert result.total_sessions() >= len(result.edge_names)

    def test_convergence_padding(self, serial_result):
        # The coordination converges before the round budget; the padded
        # cells are no-ops that carry the final state.
        result = serial_result
        converged = result.converged_round()
        assert converged is not None
        tail = [r for r in result.records if not r.executed_round]
        for record in tail:
            assert not record.ran_session
            assert record.n_changed == 0
            assert record.global_mel == result.final_mel

    def test_summary_claims(self, serial_result):
        claims = dict(MULTI_ISP_SCENARIO.summarize(serial_result))
        assert "global MEL trajectory" in claims
        assert "->" in claims["global MEL trajectory"]


class TestWorkerInvariance:
    def test_parallel_matches_serial(self, config, serial_result):
        parallel = run_multi_isp_experiment(
            config, n_isps=3, rounds=3, workers=2
        )
        assert parallel == serial_result

    def test_checkpoint_then_resume_bit_identical(
        self, config, serial_result, tmp_path
    ):
        checkpointed = run_multi_isp_experiment(
            config, n_isps=3, rounds=3, checkpoint_dir=tmp_path / "ck"
        )
        assert checkpointed == serial_result
        resumed = run_multi_isp_experiment(
            config, n_isps=3, rounds=3,
            checkpoint_dir=tmp_path / "ck", resume=True,
        )
        assert resumed == serial_result

    def test_interrupt_then_resume_bit_identical(
        self, config, serial_result, tmp_path
    ):
        """Losing arbitrary shards must recompute them bit-identically."""
        run_multi_isp_experiment(
            config, n_isps=3, rounds=3, checkpoint_dir=tmp_path / "ck"
        )
        store = CheckpointStore(
            tmp_path / "ck", "multi_isp",
            sweep_fingerprint("multi_isp", config, _PARAMS),
        )
        n_units = len(serial_result.records)
        assert store.completed(n_units) == set(range(n_units))
        # Simulate an interrupt that lost the first and last shards.
        store.shard_path(0).unlink()
        store.shard_path(n_units - 1).unlink()
        resumed = run_multi_isp_experiment(
            config, n_isps=3, rounds=3,
            checkpoint_dir=tmp_path / "ck", resume=True,
        )
        assert resumed == serial_result

    def test_stale_fingerprint_refuses_resume(self, config, tmp_path):
        run_multi_isp_experiment(
            config, n_isps=3, rounds=3, checkpoint_dir=tmp_path / "ck"
        )
        with pytest.raises(ConfigurationError, match="refusing to resume"):
            run_multi_isp_experiment(
                config, n_isps=3, rounds=2,
                checkpoint_dir=tmp_path / "ck", resume=True,
            )


class TestRunMultiIsp:
    def test_direct_runner_matches_coordinator_defaults(self, config):
        result = run_multi_isp(config, n_isps=3, max_rounds=3)
        assert result.isp_names
        assert result.n_rounds() >= 1

    def test_direct_and_sweep_defaults_are_the_same_scenario(
        self, config, serial_result
    ):
        # Both entry points must use the registered scenario defaults
        # (notably transit_scale), not the coordinator's bare defaults.
        direct = run_multi_isp(config, n_isps=3, max_rounds=3)
        assert direct.initial_mel == serial_result.initial_mel
        grid_trajectory = serial_result.mel_trajectory()
        for round_index, mel in enumerate(direct.mel_trajectory()):
            assert mel == grid_trajectory[round_index]

    def test_peering_probability_forwarded(self, config):
        """Regression: density knobs must reach the internetwork build."""
        sparse = run_multi_isp(
            config, n_isps=5, shape="random", peering_probability=0.0,
            max_rounds=1, include_transit=False,
        )
        dense = run_multi_isp(
            config, n_isps=5, shape="random", peering_probability=1.0,
            max_rounds=1, include_transit=False,
        )
        assert len(sparse.edge_names) == 4  # exactly the spanning tree
        assert len(dense.edge_names) > len(sparse.edge_names)

    def test_explicit_internetwork_rejects_shape_kwargs(self, config):
        from repro.topology.generator import GeneratorConfig
        from repro.topology.internetwork import (
            InternetworkConfig,
            build_internetwork,
        )

        net = build_internetwork(InternetworkConfig(
            n_isps=2, shape="chain", seed=2005,
            generator=GeneratorConfig(min_pops=6, max_pops=14),
        ))
        with pytest.raises(ConfigurationError, match="fixes the topology"):
            run_multi_isp(config, internetwork=net, n_isps=3)
        result = run_multi_isp(config, internetwork=net, max_rounds=2)
        assert len(result.edge_names) == 1

    def test_n2_sweep_matches_single_session_grid(self, config):
        """The sweep's N=2 chain is one session then a convergence skip."""
        result = run_multi_isp_experiment(config, n_isps=2, rounds=2)
        assert len(result.edge_names) == 1
        first, second = result.round_records(0)[0], result.round_records(1)[0]
        assert first.ran_session and first.adopted
        assert not second.ran_session


@pytest.mark.slow
class TestSlowConvergenceSweeps:
    """Larger internetworks; deselected from tier-1 (run with -m slow)."""

    def test_random_graph_convergence(self, config):
        result = run_multi_isp_experiment(
            config, n_isps=5, shape="random", rounds=8,
        )
        assert result.converged_round() is not None
        assert result.final_mel <= result.initial_mel

    def test_ring_randomized_order(self, config):
        result = run_multi_isp_experiment(
            config, n_isps=4, shape="ring", rounds=8, order="random",
        )
        assert result.converged_round() is not None

    def test_worker_invariance_at_scale(self, config):
        serial = run_multi_isp_experiment(
            config, n_isps=5, shape="random", rounds=6
        )
        parallel = run_multi_isp_experiment(
            config, n_isps=5, shape="random", rounds=6, workers=3
        )
        assert serial == parallel


class TestCli:
    def test_multi_isp_command(self, capsys):
        from repro.cli import main

        assert main([
            "multi-isp", "--preset", "quick", "--isps", "3",
            "--rounds", "2", "--transit-scale", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "peering edges" in out
        assert "global MEL initial -> final" in out
        assert "initial global MEL (with transit)" in out

    def test_multi_isp_command_no_transit_label(self, capsys):
        from repro.cli import main

        assert main([
            "multi-isp", "--preset", "quick", "--isps", "3",
            "--rounds", "2", "--no-transit",
        ]) == 0
        out = capsys.readouterr().out
        assert "initial global MEL (no transit)" in out

    def test_sweep_multi_isp_command(self, capsys, tmp_path):
        from repro.cli import main

        args = [
            "sweep", "multi_isp", "--preset", "quick",
            "--checkpoint-dir", str(tmp_path / "ck"),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "sweep: multi_isp" in first
        assert "global MEL trajectory" in first
        # Resumes from the shards it just wrote, bit-identically.
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert second == first


class TestScaleKnobThreading:
    def test_transit_engines_sweep_bit_identical(self, config, serial_result):
        legacy = run_multi_isp_experiment(
            config, n_isps=3, rounds=3, transit_engine="legacy"
        )
        # Equal content cell by cell; only the engine label itself may
        # differ, and it is not part of the records.
        assert legacy.records == serial_result.records
        assert legacy.final_mel == serial_result.final_mel

    def test_legacy_engine_checkpoint_resume(self, config, tmp_path):
        checkpointed = run_multi_isp_experiment(
            config, n_isps=3, rounds=3, transit_engine="legacy",
            checkpoint_dir=tmp_path / "ck",
        )
        resumed = run_multi_isp_experiment(
            config, n_isps=3, rounds=3, transit_engine="legacy",
            checkpoint_dir=tmp_path / "ck", resume=True,
        )
        assert resumed == checkpointed

    def test_coord_workers_sweep_bit_identical(self, config, serial_result):
        parallel = run_multi_isp_experiment(
            config, n_isps=3, rounds=3, coord_workers=2
        )
        assert parallel.records == serial_result.records

    def test_bad_transit_engine_rejected(self, config):
        from repro.errors import SweepUnitError

        with pytest.raises(SweepUnitError, match="transit_engine"):
            run_multi_isp_experiment(
                config, n_isps=2, rounds=2, transit_engine="psychic",
                max_retries=0,
            )


@pytest.mark.slow
class TestHundredIspScale:
    """N=100 random-peering coordination; nightly scale coverage.

    The colored schedule is what makes these runs tractable: ~180 peering
    edges collapse into single-digit color classes per round, and the
    convergence instrumentation classifies every stop (including a
    genuine two-cycle the detector catches in the wild at this scale —
    and that the damping ladder re-drives to an actual fixed point).
    """

    def _hundred(self, seed):
        from repro.topology.generator import GeneratorConfig
        from repro.topology.internetwork import (
            InternetworkConfig,
            build_internetwork,
        )

        return build_internetwork(InternetworkConfig(
            n_isps=100, shape="random", seed=seed, pool_size=120,
            peering_probability=0.1,
            generator=GeneratorConfig(min_pops=6, max_pops=10),
        ))

    def test_hundred_isps_converge_with_narrow_schedule(self, config):
        net = self._hundred(seed=11)
        result = run_multi_isp(
            config, internetwork=net, include_transit=False, max_rounds=12,
        )
        assert result.stop_reason == "converged"
        assert result.converged
        # The whole point of coloring: rounds cost O(colors), not
        # O(edges) — greedy stays in the single digits here.
        assert net.n_edges() > 100
        assert result.n_colors <= 10
        for round_ in result.rounds:
            assert len(round_.color_schedule) == result.n_colors

    def test_hundred_isps_oscillation_detected_early(self, config):
        import warnings

        from repro.errors import CoordinationOscillationWarning

        net = self._hundred(seed=2005)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_multi_isp(
                config, internetwork=net, include_transit=False,
                max_rounds=12,
            )
        assert result.stop_reason == "oscillating"
        assert len(result.rounds) < 12, "detection must save the budget"
        oscillations = [
            w.message for w in caught
            if issubclass(w.category, CoordinationOscillationWarning)
        ]
        assert oscillations
        # The wild N=100 cycle is a canonical two-cycle over a handful
        # of contested edges — the attribution must name them.
        assert oscillations[0].cycle_length == 2
        assert oscillations[0].edges

    def test_hundred_isps_redriven_to_convergence_under_damping(
        self, config
    ):
        """The seed-2005 two-cycle, damped: pinned acceptance regression.

        One hysteresis escalation on the contested edges must carry the
        run to a genuine fixed point, at a final global MEL no worse
        than where the undamped run aborted.
        """
        import warnings

        net = self._hundred(seed=2005)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            undamped = run_multi_isp(
                config, internetwork=net, include_transit=False,
                max_rounds=24,
            )
        assert undamped.stop_reason == "oscillating"
        # The damped run absorbs every revisit: no warning escapes.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            damped = run_multi_isp(
                config, internetwork=net, include_transit=False,
                max_rounds=24, damping="ladder",
            )
        assert damped.stop_reason == "converged"
        assert damped.converged
        assert damped.final_mel <= undamped.final_mel + 1e-9
        assert len(caught) >= 1
