"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.util.rng import derive_rng, make_rng, spawn_seeds


class TestMakeRng:
    def test_none_gives_deterministic_default(self):
        a = make_rng(None).integers(0, 1000, size=5)
        b = make_rng(None).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_int_seed_is_deterministic(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            make_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(ConfigurationError):
            make_rng("seed")  # type: ignore[arg-type]

    def test_numpy_integer_accepted(self):
        assert make_rng(np.int64(5)).random() == make_rng(5).random()


class TestDeriveRng:
    def test_same_labels_same_stream(self):
        a = derive_rng(7, "topology", "isp01").random()
        b = derive_rng(7, "topology", "isp01").random()
        assert a == b

    def test_different_labels_differ(self):
        a = derive_rng(7, "topology", "isp01").random()
        b = derive_rng(7, "topology", "isp02").random()
        assert a != b

    def test_different_base_seeds_differ(self):
        a = derive_rng(7, "x").random()
        b = derive_rng(8, "x").random()
        assert a != b

    def test_label_types_mix(self):
        # Labels of different types must be usable and stable.
        a = derive_rng(1, "a", 2, 3.5).random()
        b = derive_rng(1, "a", 2, 3.5).random()
        assert a == b

    def test_none_source(self):
        assert derive_rng(None, "k").random() == derive_rng(None, "k").random()


class TestSpawnSeeds:
    def test_count_and_range(self):
        seeds = spawn_seeds(3, 10)
        assert len(seeds) == 10
        assert all(0 <= s < 2**31 for s in seeds)

    def test_deterministic(self):
        assert spawn_seeds(3, 5) == spawn_seeds(3, 5)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            spawn_seeds(3, -1)

    def test_zero_count(self):
        assert spawn_seeds(3, 0) == []
