"""Tests for the secondary analyses."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.analysis import (
    gain_by_interconnection_count,
    gain_concentration_curve,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.distance import (
    DistanceExperimentResult,
    DistancePairResult,
    build_distance_problem,
    run_distance_experiment,
)
from repro.topology.dataset import build_default_dataset


def _pair_result(name, ics, gain):
    return DistancePairResult(
        pair_name=name,
        n_flows=10,
        n_interconnections=ics,
        total_gain_optimal=gain + 1,
        total_gain_negotiated=gain,
        gain_a_optimal=0.0,
        gain_b_optimal=0.0,
        gain_a_negotiated=0.0,
        gain_b_negotiated=0.0,
        total_gain_flow_pareto=0.0,
        total_gain_flow_both_better=0.0,
        flow_gains_optimal=np.zeros(10),
        flow_gains_negotiated=np.zeros(10),
        fraction_non_default=0.1,
    )


class TestGainByInterconnectionCount:
    def test_grouping_and_medians(self):
        result = DistanceExperimentResult(
            pairs=[
                _pair_result("p1", 2, 1.0),
                _pair_result("p2", 2, 3.0),
                _pair_result("p3", 4, 8.0),
            ]
        )
        grouped = gain_by_interconnection_count(result)
        assert grouped[2] == (2, 2.0)
        assert grouped[4] == (1, 8.0)

    def test_on_real_experiment(self):
        result = run_distance_experiment(ExperimentConfig.quick())
        grouped = gain_by_interconnection_count(result)
        assert sum(n for n, _ in grouped.values()) == len(result.pairs)


class TestGainConcentration:
    @pytest.fixture(scope="class")
    def problem(self):
        config = ExperimentConfig.quick()
        dataset = build_default_dataset(config.dataset)
        pair = dataset.pairs(min_interconnections=2, max_pairs=1)[0]
        return build_distance_problem(pair)

    def test_curve_shape(self, problem):
        optimal = np.argmin(problem.cost_a + problem.cost_b, axis=1)
        curve = gain_concentration_curve(problem, optimal, points=6)
        assert len(curve) == 6
        assert curve[0] == (0.0, 0.0)
        fractions = [f for f, _ in curve]
        captured = [c for _, c in curve]
        assert fractions == sorted(fractions)
        # Sorted-by-contribution capture is monotone non-decreasing.
        assert all(a <= b + 1e-9 for a, b in zip(captured, captured[1:]))
        assert captured[-1] == pytest.approx(1.0)

    def test_concentration_front_loaded(self, problem):
        """A small fraction of flows captures a large share of the gain."""
        optimal = np.argmin(problem.cost_a + problem.cost_b, axis=1)
        curve = dict(gain_concentration_curve(problem, optimal, points=6))
        assert curve[0.2] >= 0.5  # 20% of flows -> at least half the gain

    def test_no_moved_flows(self, problem):
        curve = gain_concentration_curve(problem, problem.defaults, points=3)
        assert curve == [(0.0, 0.0), (0.5, 0.0), (1.0, 0.0)]

    def test_bad_points(self, problem):
        with pytest.raises(ConfigurationError):
            gain_concentration_curve(problem, problem.defaults, points=1)
