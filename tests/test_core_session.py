"""Tests for the Nexit session engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agent import NegotiationAgent
from repro.core.evaluators import StaticCostEvaluator, StaticPreferenceEvaluator
from repro.core.mapping import LinearDeltaMapper
from repro.core.outcomes import TerminationReason
from repro.core.preferences import PreferenceRange
from repro.core.session import NegotiationSession, SessionConfig
from repro.core.strategies import (
    LowerGainTurns,
    ReassignEveryFraction,
    TerminationMode,
    VetoIfWorseThanDefault,
)
from repro.errors import NegotiationError


def make_session(prefs_a, prefs_b, defaults=None, config=None, sizes=None,
                 term=TerminationMode.EARLY):
    prefs_a = np.asarray(prefs_a)
    prefs_b = np.asarray(prefs_b)
    if defaults is None:
        defaults = np.zeros(prefs_a.shape[0], dtype=int)
    ev_a = StaticPreferenceEvaluator(prefs_a, defaults)
    ev_b = StaticPreferenceEvaluator(prefs_b, defaults)
    return NegotiationSession(
        NegotiationAgent("a", ev_a, termination=term),
        NegotiationAgent("b", ev_b, termination=term),
        defaults=defaults,
        sizes=sizes,
        config=config,
    )


class TestBasicDynamics:
    def test_uncompensated_concession_never_happens(self):
        # A single flow where only B gains: A, proposing first with no
        # upside anywhere, stops immediately — no one-sided charity.
        out = make_session([[0, -1]], [[0, 3]]).run()
        assert out.choices[0] == 0
        assert out.reason == TerminationReason.EARLY_STOP_A

    def test_positive_sum_trade_happens_under_full_termination(self):
        # Under full termination with rollback disabled, the socially
        # positive (but A-losing) trade completes — the social-welfare
        # configuration of the protocol.
        out = make_session([[0, -1]], [[0, 3]], term=TerminationMode.FULL,
                           config=SessionConfig(rollback=False)).run()
        assert out.choices[0] == 1
        assert out.gain_a == -1 and out.gain_b == 3

    def test_full_termination_with_rollback_reverts_loser(self):
        out = make_session([[0, -1]], [[0, 3]],
                           term=TerminationMode.FULL).run()
        # The trade is proposed and accepted, then rolled back to protect A.
        assert out.choices[0] == 0
        assert out.gain_a >= 0 and out.gain_b >= 0
        assert len(out.rolled_back) == 1

    def test_negative_sum_trade_rejected(self):
        out = make_session([[0, -3]], [[0, 1]],
                           term=TerminationMode.FULL).run()
        assert out.choices[0] == 0
        assert out.reason == TerminationReason.NO_JOINT_GAIN

    def test_mutual_compensation_across_flows(self):
        """The core Nexit dynamic: trade a loss here for a gain there."""
        prefs_a = [[0, -2], [0, 5]]
        prefs_b = [[0, 5], [0, -2]]
        out = make_session(prefs_a, prefs_b).run()
        assert list(out.choices) == [1, 1]
        assert out.gain_a == 3 and out.gain_b == 3

    def test_flows_removed_after_acceptance(self):
        out = make_session([[0, 1]], [[0, 1]]).run()
        assert out.n_negotiated == 1
        assert out.reason == TerminationReason.EXHAUSTED

    def test_defaults_kept_for_unnegotiated(self):
        defaults = np.array([1, 0])
        out = make_session([[0, 0], [0, 0]], [[0, 0], [0, 0]],
                           defaults=defaults).run()
        assert np.array_equal(out.choices, defaults)


class TestWinWinGuarantee:
    def test_rollback_protects_loser(self):
        # Only A gains; every trade hurts B: nothing should survive.
        prefs_a = [[0, 5], [0, 4]]
        prefs_b = [[0, -1], [0, -1]]
        out = make_session(prefs_a, prefs_b).run()
        assert out.gain_a >= 0 and out.gain_b >= 0
        assert np.array_equal(out.choices, [0, 0])
        assert len(out.rolled_back) > 0

    def test_rollback_keeps_good_trades(self):
        # Two good trades plus one that pushes B negative.
        prefs_a = [[0, -1], [0, 5], [0, 9]]
        prefs_b = [[0, 4], [0, -2], [0, -3]]
        out = make_session(prefs_a, prefs_b).run()
        assert out.gain_a >= 0 and out.gain_b >= 0
        # At least the mutually-compensating pair survives.
        assert out.n_negotiated >= 2

    def test_rollback_disabled(self):
        prefs_a = [[0, 5], [0, 4]]
        prefs_b = [[0, -1], [0, -1]]
        out = make_session(prefs_a, prefs_b,
                           config=SessionConfig(rollback=False)).run()
        assert out.gain_b < 0  # without the guard, B ends negative

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(1, 12), st.integers(2, 4))
    def test_never_worse_than_default(self, seed, n_flows, n_alts):
        """Property: with rollback, both class gains are >= 0 always."""
        rng = np.random.default_rng(seed)
        prefs_a = rng.integers(-5, 6, size=(n_flows, n_alts))
        prefs_b = rng.integers(-5, 6, size=(n_flows, n_alts))
        defaults = rng.integers(0, n_alts, size=n_flows)
        rows = np.arange(n_flows)
        prefs_a[rows, defaults] = 0
        prefs_b[rows, defaults] = 0
        out = make_session(prefs_a, prefs_b, defaults=defaults).run()
        assert out.gain_a >= 0
        assert out.gain_b >= 0
        assert out.true_gain_a >= -1e-9
        assert out.true_gain_b >= -1e-9


class TestTermination:
    def test_early_stop_when_no_own_upside(self):
        # A has zero upside anywhere and proposes first: stops immediately.
        prefs_a = [[0, 0], [0, -1]]
        prefs_b = [[0, 1], [0, 1]]
        out = make_session(prefs_a, prefs_b).run()
        assert out.reason == TerminationReason.EARLY_STOP_A
        assert out.n_negotiated == 0

    def test_full_termination_exhausts_joint_gains(self):
        prefs_a = [[0, 0], [0, -1]]
        prefs_b = [[0, 1], [0, 1]]
        out = make_session(prefs_a, prefs_b, term=TerminationMode.FULL).run()
        # Flow 0 is a free Pareto improvement for B; full termination takes it.
        assert out.choices[0] == 1
        assert out.gain_a == 0 and out.gain_b == 1

    def test_round_limit(self):
        prefs_a = [[0, 1]] * 5
        prefs_b = [[0, 1]] * 5
        out = make_session(prefs_a, prefs_b,
                           config=SessionConfig(max_rounds=2)).run()
        assert out.reason == TerminationReason.ROUND_LIMIT
        assert out.n_negotiated == 2


class TestVeto:
    def test_vetoed_proposal_banned_and_negotiation_continues(self):
        # Flow 0 (A +9, B -5) ties flow 1 (A +1, B +3) on combined sum;
        # A's local tie-break proposes flow 0 first, B vetoes it (its
        # cumulative would go negative), and negotiation then completes
        # the mutually good flow 1 instead of deadlocking.
        prefs_a = [[0, 9], [0, 1]]
        prefs_b = [[0, -5], [0, 3]]
        ev_a = StaticPreferenceEvaluator(np.array(prefs_a), np.zeros(2, int))
        ev_b = StaticPreferenceEvaluator(np.array(prefs_b), np.zeros(2, int))
        session = NegotiationSession(
            NegotiationAgent("a", ev_a),
            NegotiationAgent("b", ev_b, acceptance=VetoIfWorseThanDefault()),
        )
        out = session.run()
        assert out.choices[0] == 0  # vetoed
        assert out.choices[1] == 1  # accepted
        rejected = [r for r in out.rounds if not r.accepted]
        assert len(rejected) == 1
        assert rejected[0].flow_index == 0


class TestReassignment:
    def test_figure3_dynamics(self):
        """Zero-gain commit then reassignment-revealed gain (Figure 3)."""
        p1 = PreferenceRange(1)
        ev_a = StaticPreferenceEvaluator(
            np.array([[-1, 0], [0, 0]]), np.array([1, 1]), p1,
            stages=[np.array([[-1, 0], [0, 0]])],
        )
        ev_b = StaticPreferenceEvaluator(
            np.array([[0, 0], [0, 0]]), np.array([1, 1]), p1,
            stages=[np.array([[0, 0], [1, 0]])],
        )
        session = NegotiationSession(
            NegotiationAgent("a", ev_a),
            NegotiationAgent("b", ev_b),
            config=SessionConfig(reassignment_policy=ReassignEveryFraction(0.5)),
        )
        out = session.run()
        assert list(out.choices) == [1, 0]
        assert out.reassignments >= 1

    def test_reassignment_counted_by_traffic_fraction(self):
        prefs = [[0, 1]] * 4
        out = make_session(
            prefs, prefs,
            sizes=np.array([1.0, 1.0, 1.0, 97.0]),
            config=SessionConfig(
                reassignment_policy=ReassignEveryFraction(0.5)
            ),
        ).run()
        # Only the 97-unit flow crosses the 50% threshold.
        assert out.reassignments == 1


class TestTurnPolicies:
    def test_lower_gain_turns(self):
        # Flow 0 favors A, flow 1 favors B; the policy hands the turn to
        # whoever trails in cumulative gain.
        prefs_a = [[0, 2], [0, 1]]
        prefs_b = [[0, 1], [0, 2]]
        cfg = SessionConfig(turn_policy=LowerGainTurns())
        out = make_session(prefs_a, prefs_b, config=cfg).run()
        proposers = [r.proposer for r in out.accepted_rounds()]
        # A (tie at 0,0) proposes flow 0 and pulls ahead 2-1; B, trailing,
        # gets the next turn.
        assert proposers == [0, 1]


class TestValidation:
    def test_shape_mismatch_rejected(self):
        ev_a = StaticPreferenceEvaluator(np.zeros((2, 2), int), np.zeros(2, int))
        ev_b = StaticPreferenceEvaluator(np.zeros((3, 2), int), np.zeros(3, int))
        with pytest.raises(NegotiationError):
            NegotiationSession(NegotiationAgent("a", ev_a),
                               NegotiationAgent("b", ev_b))

    def test_bad_sizes_rejected(self):
        with pytest.raises(NegotiationError):
            make_session([[0, 1]], [[0, 1]], sizes=np.array([0.0]))

    def test_bad_defaults_rejected(self):
        with pytest.raises(NegotiationError):
            make_session([[0, 1]], [[0, 1]], defaults=np.array([7]))


class TestMessageTranscript:
    def test_transcript_structure(self):
        cfg = SessionConfig(record_messages=True)
        session = make_session([[0, -1], [0, 5]], [[0, 5], [0, -1]], config=cfg)
        out = session.run()
        kinds = [type(m).__name__ for m in session.messages]
        assert kinds.count("PreferenceAdvertisement") == 2
        assert kinds.count("ProposalMessage") == out.n_rounds
        assert kinds.count("AcceptMessage") == len(out.accepted_rounds())

    def test_no_transcript_by_default(self):
        session = make_session([[0, 1]], [[0, 1]])
        session.run()
        assert session.messages == []


class TestTrueGainAccounting:
    def test_true_gains_from_cost_evaluators(self):
        # Mirrored compensation: each ISP loses 2.5 km on one flow and
        # gains 9 km on the other.
        costs_a = np.array([[10.0, 12.5], [20.0, 11.0]])
        costs_b = np.array([[20.0, 11.0], [10.0, 12.5]])
        defaults = np.array([0, 0])
        mapper = LinearDeltaMapper(PreferenceRange(10), unit=1.0)
        session = NegotiationSession(
            NegotiationAgent("a", StaticCostEvaluator(costs_a, defaults, mapper)),
            NegotiationAgent("b", StaticCostEvaluator(costs_b, defaults, mapper)),
        )
        out = session.run()
        assert list(out.choices) == [1, 1]
        assert out.true_gain_a == pytest.approx(6.5)
        assert out.true_gain_b == pytest.approx(6.5)

    def test_true_metric_rollback(self):
        # Classes say the trade is neutral-positive, but A's true metric
        # loses: the session must roll it back.
        costs_a = np.array([[10.0, 10.4]])  # true loss, class 0
        costs_b = np.array([[20.0, 19.0]])  # true gain +1, class +1
        mapper = LinearDeltaMapper(PreferenceRange(10), unit=1.0)
        session = NegotiationSession(
            NegotiationAgent("a", StaticCostEvaluator(costs_a, np.array([0]), mapper)),
            NegotiationAgent("b", StaticCostEvaluator(costs_b, np.array([0]), mapper)),
        )
        out = session.run()
        assert out.choices[0] == 0
        assert out.true_gain_a == 0.0
