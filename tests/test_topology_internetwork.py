"""Multi-ISP internetwork generation: shapes, determinism, validation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.topology.generator import GeneratorConfig
from repro.topology.interconnect import find_isp_pairs
from repro.topology.internetwork import (
    Internetwork,
    InternetworkConfig,
    build_internetwork,
)

GEN = GeneratorConfig(min_pops=6, max_pops=14)


@pytest.fixture(scope="module")
def chain3():
    return build_internetwork(
        InternetworkConfig(n_isps=3, shape="chain", seed=2005, generator=GEN)
    )


class TestConfigValidation:
    def test_unknown_shape(self):
        with pytest.raises(ConfigurationError, match="shape"):
            InternetworkConfig(shape="mesh")

    def test_too_few_isps(self):
        with pytest.raises(ConfigurationError, match="n_isps"):
            InternetworkConfig(n_isps=1)

    def test_ring_needs_three(self):
        with pytest.raises(ConfigurationError, match="ring"):
            InternetworkConfig(n_isps=2, shape="ring")

    def test_pool_smaller_than_members(self):
        with pytest.raises(ConfigurationError, match="pool_size"):
            InternetworkConfig(n_isps=4, pool_size=3)

    def test_bad_peering_probability(self):
        with pytest.raises(ConfigurationError, match="peering_probability"):
            InternetworkConfig(peering_probability=1.5)


class TestShapes:
    def test_chain(self, chain3):
        assert chain3.n_isps() == 3
        assert chain3.n_edges() == 2
        names = chain3.names()
        # Edges follow the chain and are oriented along it.
        for i, edge in enumerate(chain3.edges):
            assert edge.isp_a.name == names[i]
            assert edge.isp_b.name == names[i + 1]
        assert chain3.is_connected()

    def test_ring(self):
        net = build_internetwork(
            InternetworkConfig(
                n_isps=3, shape="ring", seed=2005, generator=GEN
            )
        )
        assert net.n_isps() == 3
        assert net.n_edges() == 3
        degrees = dict(net.graph().degree())
        assert all(d == 2 for d in degrees.values())

    def test_random_connected(self):
        net = build_internetwork(
            InternetworkConfig(
                n_isps=5, shape="random", seed=2005, generator=GEN
            )
        )
        assert net.n_isps() == 5
        assert net.is_connected()
        # A connected graph needs at least a spanning tree.
        assert net.n_edges() >= 4

    def test_random_peering_probability_bounds_edges(self):
        sparse = build_internetwork(
            InternetworkConfig(
                n_isps=5, shape="random", seed=2005, generator=GEN,
                peering_probability=0.0,
            )
        )
        dense = build_internetwork(
            InternetworkConfig(
                n_isps=5, shape="random", seed=2005, generator=GEN,
                peering_probability=1.0,
            )
        )
        assert sparse.n_edges() == 4  # exactly the spanning tree
        assert dense.n_edges() >= sparse.n_edges()
        assert sparse.is_connected() and dense.is_connected()

    def test_every_edge_meets_interconnection_floor(self, chain3):
        floor = chain3.config.min_interconnections
        for edge in chain3.edges:
            assert edge.n_interconnections() >= floor

    def test_deterministic_in_seed(self, chain3):
        again = build_internetwork(
            InternetworkConfig(
                n_isps=3, shape="chain", seed=2005, generator=GEN
            )
        )
        assert again.names() == chain3.names()
        assert [e.name for e in again.edges] == [
            e.name for e in chain3.edges
        ]

    def test_seed_override(self, chain3):
        other = build_internetwork(
            InternetworkConfig(
                n_isps=3, shape="chain", seed=2005, generator=GEN,
                pool_size=24,
            ),
            seed=2006,
        )
        assert other.config.seed == 2006

    def test_unrealizable_shape_raises(self):
        # A pool of 2 tiny ISPs cannot hold a 4-chain.
        with pytest.raises(TopologyError, match="increase pool_size"):
            build_internetwork(
                InternetworkConfig(
                    n_isps=4,
                    shape="chain",
                    seed=2005,
                    pool_size=4,
                    min_interconnections=20,
                    generator=GEN,
                )
            )


class TestInternetworkClass:
    def test_accessors(self, chain3):
        name = chain3.names()[1]
        assert chain3.get(name).name == name
        assert chain3.index(name) == 1
        assert chain3.edges_of(name) == [0, 1]
        assert chain3.edge_side(0, name) == "b"
        assert chain3.edge_side(1, name) == "a"

    def test_unknown_isp(self, chain3):
        with pytest.raises(TopologyError, match="no ISP named"):
            chain3.get("nope")
        with pytest.raises(TopologyError, match="no ISP named"):
            chain3.edges_of("nope")

    def test_edge_side_non_endpoint(self, chain3):
        outsider = chain3.names()[2]
        with pytest.raises(TopologyError, match="not an endpoint"):
            chain3.edge_side(0, outsider)

    def test_duplicate_edge_rejected(self, chain3):
        with pytest.raises(TopologyError, match="duplicate edge"):
            Internetwork(
                chain3.isps, [chain3.edges[0], chain3.edges[0].reversed()]
            )

    def test_foreign_edge_rejected(self, chain3):
        pairs = find_isp_pairs(chain3.isps, min_interconnections=1)
        member_only = Internetwork(chain3.isps[:2], [])
        foreign = [
            p for p in pairs
            if {p.isp_a.name, p.isp_b.name}
            - {isp.name for isp in chain3.isps[:2]}
        ]
        if foreign:
            with pytest.raises(TopologyError, match="not in the internetwork"):
                Internetwork(chain3.isps[:2], [foreign[0]])
        assert member_only.n_edges() == 0

    def test_zero_edge_internetwork_allowed(self, chain3):
        net = Internetwork([chain3.isps[0]], [])
        assert net.n_edges() == 0
        assert not net.graph().edges
        assert "0 peering edges" in net.summary()
