"""One-shot smoke runs of the perf-critical kernels (``bench_smoke`` marker).

The tier-1 test command executes each hot kernel exactly once — no timing,
no statistics — so a refactor that breaks a vectorized kernel (shape drift,
engine-flag rot, incidence-cache invalidation) fails fast here rather than
silently in the nightly benchmarks. The timed counterparts live in
``benchmarks/bench_core_micro.py``; the committed baseline numbers in
``BENCH_core.json`` come from ``benchmarks/bench_smoke.py``.

Run just these with ``pytest -m bench_smoke``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.capacity.loads import LoadTracker, link_loads
from repro.capacity.provisioning import ProportionalCapacity
from repro.core.agent import NegotiationAgent
from repro.core.evaluators import FortzCostEvaluator, LoadAwareEvaluator
from repro.core.session import NegotiationSession, SessionConfig
from repro.core.strategies import ReassignEveryFraction
from repro.optimal.bandwidth_lp import (
    _link_constraint_rows,
    fractional_loads,
    solve_min_max_load_lp,
)
from repro.routing.costs import build_pair_cost_table
from repro.routing.exits import early_exit_choices
from repro.routing.flows import build_full_flowset

pytestmark = pytest.mark.bench_smoke


@pytest.fixture(scope="module")
def fixture(tiny_dataset):
    pairs = tiny_dataset.pairs(min_interconnections=2)
    pair = max(pairs, key=lambda p: p.n_interconnections())
    table = build_pair_cost_table(pair, build_full_flowset(pair))
    defaults = early_exit_choices(table)
    caps_a = ProportionalCapacity().capacities(link_loads(table, defaults, "a"))
    caps_b = ProportionalCapacity().capacities(link_loads(table, defaults, "b"))
    return table, defaults, caps_a, caps_b


def test_smoke_link_loads(fixture):
    table, defaults, _, _ = fixture
    for side in "ab":
        assert np.array_equal(
            link_loads(table, defaults, side),
            link_loads(table, defaults, side, engine="legacy"),
        )


def test_smoke_tracker_batch_kernels(fixture):
    table, defaults, caps_a, _ = fixture
    tracker = LoadTracker(table, "a")
    tracker.place(0, int(defaults[0]))
    remaining = np.ones(table.n_flows, dtype=bool)
    matrix = tracker.peek_max_ratio_matrix(remaining, caps_a)
    assert np.array_equal(matrix[1], tracker.peek_max_ratio_all(1, caps_a))
    assert matrix.shape == (table.n_flows, table.n_alternatives)


@pytest.mark.parametrize("evaluator_cls", [LoadAwareEvaluator, FortzCostEvaluator])
def test_smoke_evaluator_reassign(fixture, evaluator_cls):
    table, defaults, caps_a, _ = fixture
    sparse = evaluator_cls(table, "a", caps_a, defaults)
    legacy = evaluator_cls(table, "a", caps_a, defaults, engine="legacy")
    remaining = np.ones(table.n_flows, dtype=bool)
    sparse.reassign(remaining)
    legacy.reassign(remaining)
    assert np.array_equal(sparse.preferences(), legacy.preferences())


def test_smoke_batched_table_build(fixture, tiny_dataset):
    table, *_ = fixture
    pair = table.pair
    flowset = build_full_flowset(pair)
    batched = build_pair_cost_table(pair, flowset)
    legacy = build_pair_cost_table(pair, flowset, engine="legacy")
    assert np.array_equal(batched.up_weight, legacy.up_weight)
    assert np.array_equal(batched.down_km, legacy.down_km)


def test_smoke_derived_failure_table(fixture):
    table, *_ = fixture
    if table.n_alternatives < 2:
        pytest.skip("needs >= 2 interconnections to fail one")
    table.incidence("a")
    derived = table.without_alternative(0)
    assert derived.n_alternatives == table.n_alternatives - 1
    assert "_incidence_a" in derived.__dict__  # structurally re-derived
    assert np.array_equal(derived.up_weight, table.up_weight[:, 1:])
    assert np.array_equal(
        early_exit_choices(derived),
        np.argmin(table.up_weight[:, 1:], axis=1),
    )


def test_smoke_negotiation_scope_setup(fixture):
    table, defaults, _, _ = fixture
    table.incidence("a")
    table.incidence("b")
    affected = np.flatnonzero(defaults == 0)
    fast = table.subset(affected)
    legacy = table.subset(affected, engine="legacy")
    assert "_incidence_a" in fast.__dict__  # structurally re-derived
    assert "_incidence_b" in fast.__dict__
    for side in "ab":
        fast_inc, legacy_inc = fast.incidence(side), legacy.incidence(side)
        assert np.array_equal(fast_inc.indptr, legacy_inc.indptr)
        assert np.array_equal(fast_inc.indices, legacy_inc.indices)
        assert np.array_equal(fast_inc.entry_flow, legacy_inc.entry_flow)
    assert np.array_equal(fast.flowset.sizes(), legacy.flowset.sizes())
    assert np.array_equal(fast.up_weight, legacy.up_weight)


def test_smoke_base_seeded_link_loads(fixture):
    table, defaults, _, _ = fixture
    mask = np.arange(table.n_flows) % 2 == 0
    base = link_loads(table, defaults, "a", active=~mask)
    assert np.array_equal(
        link_loads(table, defaults, "a", active=mask, base=base),
        link_loads(table, defaults, "a", active=mask, base=base,
                   engine="legacy"),
    )


def test_smoke_lp_assembly_and_fractional_loads(fixture):
    table, defaults, caps_a, caps_b = fixture
    t_col = table.n_flows * table.n_alternatives
    base = np.zeros(caps_a.shape[0])
    sparse = _link_constraint_rows(table, "a", caps_a, base, 0, t_col)
    legacy = _link_constraint_rows(
        table, "a", caps_a, base, 0, t_col, engine="legacy"
    )
    for got, want in zip(sparse, legacy):
        assert np.array_equal(np.asarray(got), np.asarray(want))
    lp = solve_min_max_load_lp(table, caps_a, caps_b)
    for side in "ab":
        assert np.array_equal(
            fractional_loads(table, lp.fractions, side),
            fractional_loads(table, lp.fractions, side, engine="legacy"),
        )


def test_smoke_incremental_stop(fixture):
    table, defaults, caps_a, _ = fixture
    fast = NegotiationAgent(
        "a", LoadAwareEvaluator(table, "a", caps_a, defaults)
    )
    slow = NegotiationAgent(
        "a", LoadAwareEvaluator(table, "a", caps_a, defaults),
        incremental_stop=False,
    )
    remaining = np.ones(table.n_flows, dtype=bool)
    remaining[:: 2] = False
    for reassignable in (False, True):
        assert fast.wants_to_stop(
            remaining, reassignable=reassignable
        ) == slow.wants_to_stop(remaining, reassignable=reassignable)


def test_smoke_sweep_runner_path(tmp_path):
    """The unified sweep runner: warm start + checkpoint + legacy parity.

    One-shot exercise of the runner machinery under tier-1: the sweep
    path must stay bit-identical to the legacy driver loop, a warm-started
    dataset must be a cache hit (not a rebuild), and a checkpointed rerun
    must reproduce the sweep from shards alone.
    """
    from dataclasses import replace

    from repro.experiments.config import ExperimentConfig
    from repro.experiments.distance import run_distance_experiment
    from repro.experiments.parallel import dataset_for, warm_dataset

    config = replace(ExperimentConfig.quick(), max_pairs_distance=1)
    assert dataset_for(config) is warm_dataset(config)

    sweep = run_distance_experiment(config, checkpoint_dir=tmp_path)
    legacy = run_distance_experiment(config, runner="legacy")
    resumed = run_distance_experiment(
        config, checkpoint_dir=tmp_path, resume=True
    )
    for a, b in ((sweep, legacy), (sweep, resumed)):
        for s, o in zip(a.pairs, b.pairs):
            assert s.pair_name == o.pair_name
            assert s.total_gain_negotiated == o.total_gain_negotiated
            assert np.array_equal(
                s.flow_gains_negotiated, o.flow_gains_negotiated
            )


def test_bench_smoke_check_guards_recorded_speedups(tmp_path):
    """``bench_smoke.py --check`` under tier-1: speedups must stay >= 1.0.

    Runs the real benchmark script (quick preset, no baseline write) in a
    subprocess; a vectorized kernel regressing behind its legacy loop fails
    the build here instead of silently rotting the committed baseline.
    """
    import os
    import subprocess
    import sys
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["REPRO_BENCH_PRESET"] = "quick"
    env["PYTHONPATH"] = str(root / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(root / "benchmarks" / "bench_smoke.py"),
         "--check"],
        capture_output=True,
        text=True,
        env=env,
        cwd=tmp_path,  # never touches the committed BENCH_core.json
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK: every kernel at or above 1.0x" in proc.stdout


def test_smoke_reassigning_session(fixture):
    table, defaults, caps_a, caps_b = fixture
    session = NegotiationSession(
        NegotiationAgent("a", LoadAwareEvaluator(table, "a", caps_a, defaults)),
        NegotiationAgent("b", LoadAwareEvaluator(table, "b", caps_b, defaults)),
        sizes=table.flowset.sizes(),
        defaults=defaults,
        config=SessionConfig(reassignment_policy=ReassignEveryFraction(0.05)),
    )
    outcome = session.run()
    assert outcome.gain_a >= 0 and outcome.gain_b >= 0
