"""One-shot smoke runs of the perf-critical kernels (``bench_smoke`` marker).

The tier-1 test command executes each hot kernel exactly once — no timing,
no statistics — so a refactor that breaks a vectorized kernel (shape drift,
engine-flag rot, incidence-cache invalidation) fails fast here rather than
silently in the nightly benchmarks. The timed counterparts live in
``benchmarks/bench_core_micro.py``; the committed baseline numbers in
``BENCH_core.json`` come from ``benchmarks/bench_smoke.py``.

Run just these with ``pytest -m bench_smoke``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.capacity.loads import LoadTracker, link_loads
from repro.capacity.provisioning import ProportionalCapacity
from repro.core.agent import NegotiationAgent
from repro.core.evaluators import FortzCostEvaluator, LoadAwareEvaluator
from repro.core.session import NegotiationSession, SessionConfig
from repro.core.strategies import ReassignEveryFraction
from repro.routing.costs import build_pair_cost_table
from repro.routing.exits import early_exit_choices
from repro.routing.flows import build_full_flowset

pytestmark = pytest.mark.bench_smoke


@pytest.fixture(scope="module")
def fixture(tiny_dataset):
    pairs = tiny_dataset.pairs(min_interconnections=2)
    pair = max(pairs, key=lambda p: p.n_interconnections())
    table = build_pair_cost_table(pair, build_full_flowset(pair))
    defaults = early_exit_choices(table)
    caps_a = ProportionalCapacity().capacities(link_loads(table, defaults, "a"))
    caps_b = ProportionalCapacity().capacities(link_loads(table, defaults, "b"))
    return table, defaults, caps_a, caps_b


def test_smoke_link_loads(fixture):
    table, defaults, _, _ = fixture
    for side in "ab":
        assert np.array_equal(
            link_loads(table, defaults, side),
            link_loads(table, defaults, side, engine="legacy"),
        )


def test_smoke_tracker_batch_kernels(fixture):
    table, defaults, caps_a, _ = fixture
    tracker = LoadTracker(table, "a")
    tracker.place(0, int(defaults[0]))
    remaining = np.ones(table.n_flows, dtype=bool)
    matrix = tracker.peek_max_ratio_matrix(remaining, caps_a)
    assert np.array_equal(matrix[1], tracker.peek_max_ratio_all(1, caps_a))
    assert matrix.shape == (table.n_flows, table.n_alternatives)


@pytest.mark.parametrize("evaluator_cls", [LoadAwareEvaluator, FortzCostEvaluator])
def test_smoke_evaluator_reassign(fixture, evaluator_cls):
    table, defaults, caps_a, _ = fixture
    sparse = evaluator_cls(table, "a", caps_a, defaults)
    legacy = evaluator_cls(table, "a", caps_a, defaults, engine="legacy")
    remaining = np.ones(table.n_flows, dtype=bool)
    sparse.reassign(remaining)
    legacy.reassign(remaining)
    assert np.array_equal(sparse.preferences(), legacy.preferences())


def test_smoke_reassigning_session(fixture):
    table, defaults, caps_a, caps_b = fixture
    session = NegotiationSession(
        NegotiationAgent("a", LoadAwareEvaluator(table, "a", caps_a, defaults)),
        NegotiationAgent("b", LoadAwareEvaluator(table, "b", caps_b, defaults)),
        sizes=table.flowset.sizes(),
        defaults=defaults,
        config=SessionConfig(reassignment_policy=ReassignEveryFraction(0.05)),
    )
    outcome = session.run()
    assert outcome.gain_a >= 0 and outcome.gain_b >= 0
