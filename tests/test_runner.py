"""The unified sweep runner: specs, checkpoints, resume, equivalence."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.bandwidth import run_bandwidth_experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.distance import (
    run_distance_experiment,
    run_grouped_ablation,
)
from repro.experiments.parallel import pairs_for
from repro.experiments.runner import (
    CheckpointStore,
    ScenarioSpec,
    SweepRunner,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
    sweep_fingerprint,
)


@pytest.fixture(scope="module")
def tiny_config():
    return replace(
        ExperimentConfig.quick(), max_pairs_distance=2, max_pairs_bandwidth=2
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_stock_scenarios_registered(self):
        names = scenario_names()
        for name in ("distance", "bandwidth", "grouped", "oscillation",
                     "destination"):
            assert name in names

    def test_unknown_scenario(self):
        with pytest.raises(ConfigurationError, match="unknown sweep scenario"):
            get_scenario("no-such-sweep")

    def test_run_scenario_by_name(self, tiny_config):
        result = run_scenario("distance", tiny_config)
        assert len(result.pairs) == 2


# ---------------------------------------------------------------------------
# Legacy equivalence: runner output bit-identical to the pre-runner drivers
# ---------------------------------------------------------------------------


class TestLegacyEquivalence:
    def test_distance(self, tiny_config):
        sweep = run_distance_experiment(tiny_config, include_cheating=True)
        legacy = run_distance_experiment(
            tiny_config, include_cheating=True, runner="legacy"
        )
        assert len(sweep.pairs) == len(legacy.pairs) > 0
        for s, l in zip(sweep.pairs, legacy.pairs):
            assert s.pair_name == l.pair_name
            assert s.total_gain_optimal == l.total_gain_optimal
            assert s.total_gain_negotiated == l.total_gain_negotiated
            assert s.total_gain_cheating == l.total_gain_cheating
            assert np.array_equal(s.flow_gains_optimal, l.flow_gains_optimal)
            assert np.array_equal(
                s.flow_gains_negotiated, l.flow_gains_negotiated
            )

    def test_bandwidth(self, tiny_config):
        sweep = run_bandwidth_experiment(tiny_config, include_unilateral=True)
        legacy = run_bandwidth_experiment(
            tiny_config, include_unilateral=True, runner="legacy"
        )
        assert len(sweep.cases) == len(legacy.cases) > 0
        assert sweep.cases == legacy.cases  # whole dataclasses, bit-exact

    def test_grouped(self, tiny_config):
        _, pairs = pairs_for(tiny_config, 2, tiny_config.max_pairs_distance)
        sweep = run_grouped_ablation(pairs[0], [1, 3], tiny_config)
        legacy = run_grouped_ablation(
            pairs[0], [1, 3], tiny_config, runner="legacy"
        )
        assert sweep == legacy

    def test_unknown_runner_rejected(self, tiny_config):
        with pytest.raises(ConfigurationError, match="unknown runner"):
            run_distance_experiment(tiny_config, runner="turbo")
        with pytest.raises(ConfigurationError, match="unknown runner"):
            run_bandwidth_experiment(tiny_config, runner="turbo")


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


class TestSweepFingerprint:
    def test_stable_across_calls(self, tiny_config):
        a = sweep_fingerprint("distance", tiny_config, {"x": 1})
        b = sweep_fingerprint("distance", tiny_config, {"x": 1})
        assert a == b

    def test_sensitive_to_everything(self, tiny_config):
        base = sweep_fingerprint("distance", tiny_config, {"x": 1})
        assert sweep_fingerprint("bandwidth", tiny_config, {"x": 1}) != base
        assert sweep_fingerprint("distance", tiny_config, {"x": 2}) != base
        assert (
            sweep_fingerprint("distance", tiny_config.with_seed(8), {"x": 1})
            != base
        )


# ---------------------------------------------------------------------------
# Checkpoint store
# ---------------------------------------------------------------------------


class TestCheckpointStore:
    def test_shard_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path, "demo", "f" * 16)
        store.prepare(3, resume=False)
        payload = {"arr": np.arange(5.0), "n": 3}
        store.save(1, payload)
        assert store.completed(3) == {1}
        loaded = store.load(1)
        assert loaded["n"] == 3
        assert np.array_equal(loaded["arr"], payload["arr"])
        # No torn .tmp files left behind.
        assert not list(store.dir.glob("*.tmp"))

    def test_fresh_prepare_clears_stale_shards(self, tmp_path):
        old = CheckpointStore(tmp_path, "demo", "a" * 16)
        old.prepare(2, resume=False)
        old.save(0, "stale")
        new = CheckpointStore(tmp_path, "demo", "b" * 16)
        assert new.prepare(2, resume=False) == set()
        assert new.completed(2) == set()

    def test_resume_requires_matching_fingerprint(self, tmp_path):
        old = CheckpointStore(tmp_path, "demo", "a" * 16)
        old.prepare(2, resume=False)
        new = CheckpointStore(tmp_path, "demo", "b" * 16)
        with pytest.raises(ConfigurationError, match="refusing to resume"):
            new.prepare(2, resume=True)

    def test_resume_requires_matching_unit_count(self, tmp_path):
        store = CheckpointStore(tmp_path, "demo", "a" * 16)
        store.prepare(2, resume=False)
        with pytest.raises(ConfigurationError, match="refusing to resume"):
            store.prepare(3, resume=True)


# ---------------------------------------------------------------------------
# Checkpointed sweeps end to end
# ---------------------------------------------------------------------------


class TestCheckpointedSweeps:
    def test_resume_after_partial_completion_is_bit_identical(
        self, tiny_config, tmp_path
    ):
        """Drop shards from a finished sweep; resume must rebuild exactly."""
        full = run_distance_experiment(
            tiny_config, checkpoint_dir=tmp_path / "ck"
        )
        # Simulate an interrupt: one unit's shard never landed.
        store = CheckpointStore(
            tmp_path / "ck", "distance",
            sweep_fingerprint(
                "distance", tiny_config, {"include_cheating": False}
            ),
        )
        assert store.completed(len(full.pairs)) == set(range(len(full.pairs)))
        store.shard_path(0).unlink()
        resumed = run_distance_experiment(
            tiny_config, checkpoint_dir=tmp_path / "ck", resume=True
        )
        assert len(resumed.pairs) == len(full.pairs)
        for f, r in zip(full.pairs, resumed.pairs):
            assert f.pair_name == r.pair_name
            assert f.total_gain_negotiated == r.total_gain_negotiated
            assert np.array_equal(
                f.flow_gains_negotiated, r.flow_gains_negotiated
            )

    def test_interrupt_mid_sweep_then_resume(self, tiny_config, tmp_path):
        """A sweep killed mid-run resumes from its completed shards only."""
        tripwire = tmp_path / "explode"
        executions = tmp_path / "executions.log"

        def units(config, params):
            return [0, 1, 2, 3]

        def run_unit(config, params, unit):
            with open(params["log"], "a", encoding="utf-8") as fh:
                fh.write(f"{unit}\n")
            if unit >= 2 and tripwire.exists():
                raise KeyboardInterrupt
            return unit * unit

        def reduce(config, params, results):
            return list(results)

        spec = register_scenario(ScenarioSpec(
            name="_test_interruptible",
            enumerate_units=units,
            run_unit=run_unit,
            reduce=reduce,
        ))
        params = {"log": str(executions)}
        runner = SweepRunner(checkpoint_dir=tmp_path / "ck")

        tripwire.touch()
        with pytest.raises(KeyboardInterrupt):
            runner.run(spec, tiny_config, params)

        tripwire.unlink()
        resumed = SweepRunner(
            checkpoint_dir=tmp_path / "ck", resume=True
        ).run(spec, tiny_config, params)
        uninterrupted = SweepRunner().run(spec, tiny_config, params)
        assert resumed == uninterrupted == [0, 1, 4, 9]
        # Units 0 and 1 ran once before the interrupt and were NOT re-run.
        executed = executions.read_text("utf-8").split()
        assert executed.count("0") == 2  # interrupted run + uninterrupted run
        assert executed.count("1") == 2
        assert executed.count("2") == 3  # failed attempt + resume + plain run

    def test_stale_config_refuses_resume(self, tiny_config, tmp_path):
        run_distance_experiment(tiny_config, checkpoint_dir=tmp_path / "ck")
        with pytest.raises(ConfigurationError, match="refusing to resume"):
            run_distance_experiment(
                tiny_config.with_seed(123),
                checkpoint_dir=tmp_path / "ck",
                resume=True,
            )

    def test_stale_workload_refuses_resume(self, tiny_config, tmp_path):
        """Workload state is part of the fingerprint, not just its class."""
        from repro.geo.cities import default_city_database
        from repro.geo.population import PopulationModel
        from repro.traffic.gravity import GravityWorkload

        population = PopulationModel(default_city_database())
        run_bandwidth_experiment(
            tiny_config,
            workload=GravityWorkload(population, mean_size=1.0),
            checkpoint_dir=tmp_path / "ck",
        )
        with pytest.raises(ConfigurationError, match="refusing to resume"):
            run_bandwidth_experiment(
                tiny_config,
                workload=GravityWorkload(population, mean_size=5.0),
                checkpoint_dir=tmp_path / "ck",
                resume=True,
            )

    def test_resume_without_checkpoint_dir_rejected(self, tiny_config):
        with pytest.raises(ConfigurationError, match="requires a checkpoint"):
            run_distance_experiment(tiny_config, resume=True)

    def test_parallel_checkpointed_sweep(self, tiny_config, tmp_path):
        direct = run_bandwidth_experiment(tiny_config)
        checkpointed = run_bandwidth_experiment(
            tiny_config, workers=2, checkpoint_dir=tmp_path / "ck"
        )
        resumed = run_bandwidth_experiment(
            tiny_config, workers=2, checkpoint_dir=tmp_path / "ck",
            resume=True,
        )
        assert direct.cases == checkpointed.cases == resumed.cases


# ---------------------------------------------------------------------------
# Edge cases the original runner suite missed
# ---------------------------------------------------------------------------


class TestRunnerEdgeCases:
    def test_resume_with_unregistered_scenario_name(
        self, tiny_config, tmp_path
    ):
        """An unknown scenario must fail typed, even on the resume path."""
        with pytest.raises(ConfigurationError, match="unknown sweep scenario"):
            run_scenario(
                "never-registered", tiny_config,
                checkpoint_dir=tmp_path / "ck", resume=True,
            )

    def test_parallel_run_of_unregistered_spec_refuses_up_front(
        self, tiny_config, tmp_path
    ):
        """Workers resolve specs by name; a shadowed spec must not run."""
        spec = ScenarioSpec(
            name="_test_never_registered",
            enumerate_units=lambda config, params: [0, 1],
            run_unit=lambda config, params, unit: unit,
            reduce=lambda config, params, results: results,
        )
        with pytest.raises(ConfigurationError, match="not the registered"):
            SweepRunner(workers=2).run(spec, tiny_config)
        # The serial path calls the spec functions in-process and is fine.
        assert SweepRunner().run(spec, tiny_config) == [0, 1]

    def test_worker_crash_leaves_only_complete_shards(
        self, tiny_config, tmp_path
    ):
        """A failing worker must not kill the sweep or leave torn shards.

        PR 6 contract: the failing unit is retried, then surfaced as a
        :class:`~repro.errors.SweepUnitError` with its payload attached —
        after every other unit completed and checkpointed.
        """
        from repro.errors import SweepUnitError

        tripwire = tmp_path / "explode"

        def units(config, params):
            return [0, 1, 2, 3, 4, 5]

        def run_unit(config, params, unit):
            import os.path
            import time

            if unit == 3 and os.path.exists(params["tripwire"]):
                raise ValueError("synthetic worker failure")
            if unit < 3:
                # Let the early units land before the crash propagates.
                time.sleep(0.05)
            return unit * 10

        spec = register_scenario(ScenarioSpec(
            name="_test_crashing",
            enumerate_units=units,
            run_unit=run_unit,
            reduce=lambda config, params, results: list(results),
        ))
        params = {"tripwire": str(tripwire)}
        fingerprint = sweep_fingerprint("_test_crashing", tiny_config, params)

        tripwire.touch()
        with pytest.raises(SweepUnitError, match="synthetic worker failure"):
            SweepRunner(
                workers=2, checkpoint_dir=tmp_path / "ck",
                retry_backoff_s=0.0,
            ).run(spec, tiny_config, params)

        store = CheckpointStore(tmp_path / "ck", "_test_crashing", fingerprint)
        # Every unit except the failing one completed and was persisted:
        # each surviving shard loads to the exact unit result, and no torn
        # temp files were left behind.
        completed = store.completed(6)
        assert completed == {0, 1, 2, 4, 5}
        for index in completed:
            assert store.load(index) == index * 10
        assert not list(store.dir.glob("*.tmp"))

        # Re-resume computes only the missing units and is bit-identical
        # to an uninterrupted serial run.
        tripwire.unlink()
        resumed = SweepRunner(
            workers=2, checkpoint_dir=tmp_path / "ck", resume=True
        ).run(spec, tiny_config, params)
        uninterrupted = SweepRunner().run(spec, tiny_config, params)
        assert resumed == uninterrupted == [0, 10, 20, 30, 40, 50]
