"""Property tests for the peering line-graph conflict coloring.

Hypothesis drives the three contracts the coordinator's schedule rests
on: the coloring is *proper* (no two same-color edges share a member
ISP), *deterministic in the seed*, and *invariant to the enumeration
order* of the edge list. The unit tests pin the class-structure shape
(contiguous colors, ascending partition) and the degree bound of greedy
line-graph coloring.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coloring import (
    EdgeColoring,
    color_peering_edges,
    is_proper_coloring,
)
from repro.errors import ConfigurationError

_NAMES = [f"isp{i:02d}" for i in range(10)]

edge_pairs = st.tuples(
    st.sampled_from(_NAMES), st.sampled_from(_NAMES)
).filter(lambda pair: pair[0] != pair[1])

edge_lists = st.lists(edge_pairs, max_size=30)

#: Unique (as unordered pairs) edge lists, for the per-edge invariance
#: property — duplicates are interchangeable, so only the multiset of
#: their colors is invariant, not the per-index assignment.
unique_edge_lists = edge_lists.map(
    lambda edges: list(
        {tuple(sorted(pair)): pair for pair in edges}.values()
    )
)


@given(edges=edge_lists, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=200, deadline=None)
def test_coloring_is_proper(edges, seed):
    coloring = color_peering_edges(edges, seed=seed)
    assert is_proper_coloring(edges, coloring.colors)


@given(edges=edge_lists, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=100, deadline=None)
def test_coloring_is_seed_deterministic(edges, seed):
    assert color_peering_edges(edges, seed=seed) == color_peering_edges(
        edges, seed=seed
    )


@given(
    edges=unique_edge_lists,
    seed=st.integers(0, 2**31 - 1),
    shuffle_seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=100, deadline=None)
def test_coloring_is_enumeration_order_invariant(
    edges, seed, shuffle_seed
):
    from repro.util.rng import derive_rng

    base = color_peering_edges(edges, seed=seed)
    permutation = list(
        derive_rng(shuffle_seed, "test-shuffle").permutation(len(edges))
    )
    shuffled = [edges[i] for i in permutation]
    reshuffled = color_peering_edges(shuffled, seed=seed)
    # Edge identity follows the pair, not the list position.
    for new_index, old_index in enumerate(permutation):
        assert reshuffled.colors[new_index] == base.colors[old_index]
    assert reshuffled.n_colors == base.n_colors


@given(edges=edge_lists, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=100, deadline=None)
def test_classes_partition_edges_ascending(edges, seed):
    coloring = color_peering_edges(edges, seed=seed)
    flat = [i for group in coloring.classes for i in group]
    assert sorted(flat) == list(range(len(edges)))
    for color, group in enumerate(coloring.classes):
        assert group, "color classes are contiguous and non-empty"
        assert list(group) == sorted(group)
        for index in group:
            assert coloring.colors[index] == color


@given(edges=edge_lists, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=100, deadline=None)
def test_greedy_degree_bound(edges, seed):
    coloring = color_peering_edges(edges, seed=seed)
    degree: dict[str, int] = {}
    for a, b in edges:
        degree[a] = degree.get(a, 0) + 1
        degree[b] = degree.get(b, 0) + 1
    max_degree = max(degree.values(), default=0)
    assert coloring.n_colors <= max(2 * max_degree - 1, 0)


class TestColoringUnits:
    def test_empty(self):
        coloring = color_peering_edges([])
        assert coloring == EdgeColoring(colors=(), classes=())
        assert coloring.n_colors == 0
        assert coloring.max_class_size == 0

    def test_chain_stays_narrow(self):
        # Greedy over a permuted path needs 2 colors in the best order
        # and never more than 3, however many ISPs join the chain.
        edges = [
            (f"isp{i:02d}", f"isp{i + 1:02d}") for i in range(20)
        ]
        for seed in range(8):
            coloring = color_peering_edges(edges, seed=seed)
            assert 2 <= coloring.n_colors <= 3
            assert is_proper_coloring(edges, coloring.colors)

    def test_star_needs_degree_colors(self):
        edges = [("hub", f"leaf{i}") for i in range(5)]
        coloring = color_peering_edges(edges, seed=3)
        assert coloring.n_colors == 5
        assert coloring.max_class_size == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError, match="self-loop"):
            color_peering_edges([("a", "b"), ("c", "c")])

    def test_is_proper_rejects_shared_isp(self):
        edges = [("a", "b"), ("b", "c")]
        assert not is_proper_coloring(edges, [0, 0])
        assert is_proper_coloring(edges, [0, 1])
        assert not is_proper_coloring(edges, [0])
