"""The robust-negotiation sweep: pairing, determinism, CLI plumbing."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.robustness import (
    RobustnessExperimentResult,
    RobustUnitRecord,
    run_robustness_experiment,
)

_TINY = dict(fault_seeds=(0,), rounds=3, n_isps=2)


@pytest.fixture(scope="module")
def tiny_result():
    return run_robustness_experiment(ExperimentConfig.quick(), **_TINY)


class TestRobustnessSweep:
    def test_one_record_per_seed_and_mode(self, tiny_result):
        assert len(tiny_result.records) == 2
        pairs = tiny_result.paired()
        assert len(pairs) == 1
        nominal, cvar = pairs[0]
        assert nominal.mode == "nominal" and cvar.mode == "cvar"
        assert nominal.fault_seed == cvar.fault_seed == 0
        for record in (nominal, cvar):
            assert record.stop_reason in (
                "converged", "max_rounds", "quarantined"
            )
            assert record.converged == (record.stop_reason == "converged")
            assert record.cvar >= record.var
        counts = tiny_result.converged_counts()
        assert set(counts) == {"nominal", "cvar"}

    def test_mean_delta_metrics(self, tiny_result):
        for metric in ("expected", "var", "cvar", "final_mel"):
            delta = tiny_result.mean_delta(metric)
            assert delta == delta  # not NaN
        with pytest.raises(ConfigurationError, match="metric"):
            tiny_result.mean_delta("nope")

    def test_rerun_is_bit_identical(self, tiny_result):
        again = run_robustness_experiment(ExperimentConfig.quick(), **_TINY)
        assert again.records == tiny_result.records

    def test_faults_actually_fire_under_pressure(self):
        result = run_robustness_experiment(
            ExperimentConfig.quick(),
            fault_seeds=(1,), rounds=4, n_isps=2,
            abort_rate=0.9, deadline_rate=0.0, link_failure_rate=0.0,
        )
        assert all(r.n_faulted_slots > 0 for r in result.records)

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            run_robustness_experiment(
                ExperimentConfig.quick(), typo_rate=0.1
            )

    def test_paired_requires_both_modes_per_seed(self):
        lonely = RobustUnitRecord(
            fault_seed=0, mode="nominal", stop_reason="converged",
            converged=True, n_rounds=1, n_faulted_slots=0, n_rerouted=0,
            initial_mel=1.0, final_mel=1.0,
            expected=1.0, var=1.0, cvar=1.0,
        )
        result = RobustnessExperimentResult(
            tail_quantile=0.9, records=[lonely]
        )
        with pytest.raises(ConfigurationError, match="missing a mode"):
            result.paired()
        with pytest.raises(ConfigurationError, match="mode"):
            result.by_mode("nope")


class TestRobustnessCli:
    def test_cli_command_runs_and_reports(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(
            ["robust", "--preset", "quick", "--isps", "2", "--rounds", "3",
             "--fault-seeds", "0"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "robust negotiation under failure" in text
        assert "CVaR@0.9" in text
        assert "regret" in text

    def test_cli_lists_robustness_sweep(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["sweep", "robust_negotiation"])
        assert args.scenario == "robust_negotiation"
        assert args.max_retries is None
        assert args.retry_backoff is None

    def test_retry_knobs_parse_on_sweep_capable_commands(self):
        from repro.cli import build_parser

        parser = build_parser()
        for command in ("sweep", "distance", "bandwidth", "availability",
                        "multi-isp", "robust"):
            argv = [command, "--max-retries", "5", "--retry-backoff", "0.2"]
            if command == "sweep":
                argv.insert(1, "distance")
            args = parser.parse_args(argv)
            assert args.max_retries == 5
            assert args.retry_backoff == pytest.approx(0.2)
