"""Tests for the negotiation wire messages."""

import pytest

from repro.core.messages import (
    AcceptMessage,
    PreferenceAdvertisement,
    ProposalMessage,
    ReassignMessage,
    RejectMessage,
    StopMessage,
    message_from_dict,
    message_to_dict,
)
from repro.errors import ProtocolError, SerializationError

ALL_MESSAGES = [
    PreferenceAdvertisement(
        sender="a",
        preferences=((0, 1), (-1, 0)),
        defaults=(0, 1),
    ),
    ProposalMessage(sender="b", round_index=3, flow_index=7, alternative=1),
    AcceptMessage(sender="a", round_index=3, flow_index=7, alternative=1),
    RejectMessage(sender="a", round_index=4, flow_index=2, alternative=0),
    ReassignMessage(sender="b", preferences=((0, 2),)),
    StopMessage(sender="a", reason="no additional gain"),
]


class TestValidation:
    def test_bad_sender(self):
        with pytest.raises(ProtocolError):
            StopMessage(sender="c")

    def test_advertisement_alignment(self):
        with pytest.raises(ProtocolError):
            PreferenceAdvertisement(
                sender="a", preferences=((0,),), defaults=(0, 1)
            )

    def test_negative_proposal_fields(self):
        with pytest.raises(ProtocolError):
            ProposalMessage(sender="a", round_index=-1)


class TestSerialization:
    @pytest.mark.parametrize("message", ALL_MESSAGES,
                             ids=lambda m: type(m).__name__)
    def test_round_trip(self, message):
        payload = message_to_dict(message)
        assert payload["type"] == message.kind
        restored = message_from_dict(payload)
        assert restored == message

    def test_unknown_type(self):
        with pytest.raises(SerializationError):
            message_from_dict({"type": "nonsense", "sender": "a"})

    def test_missing_type(self):
        with pytest.raises(SerializationError):
            message_from_dict({"sender": "a"})

    def test_malformed_fields(self):
        with pytest.raises(SerializationError):
            message_from_dict({"type": "proposal", "sender": "a"})

    def test_payload_is_json_safe(self):
        import json

        for message in ALL_MESSAGES:
            json.dumps(message_to_dict(message))
