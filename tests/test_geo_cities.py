"""Tests for repro.geo.cities."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geo.cities import City, CityDatabase, default_city_database
from repro.geo.coords import GeoPoint


@pytest.fixture(scope="module")
def db():
    return default_city_database()


class TestDefaultDatabase:
    def test_size(self, db):
        # Enough cities for diverse 65-ISP footprints.
        assert len(db) >= 120

    def test_unique_names(self, db):
        names = [c.name for c in db]
        assert len(set(names)) == len(names)

    def test_contains_major_cities(self, db):
        for name in ("New York", "London", "Tokyo", "Seattle", "Frankfurt"):
            assert name in db

    def test_populations_positive(self, db):
        assert all(c.population > 0 for c in db)

    def test_population_skew(self, db):
        # The gravity model relies on heavy-tailed populations.
        pops = sorted(c.population for c in db)
        assert pops[-1] / pops[0] > 20

    def test_regions_cover_continents(self, db):
        regions = db.regions()
        assert "na-east" in regions
        assert "eu-west" in regions
        assert "apac" in regions

    def test_get_unknown_raises(self, db):
        with pytest.raises(ConfigurationError):
            db.get("Atlantis")

    def test_get_known(self, db):
        city = db.get("Seattle")
        assert city.country == "US"
        assert city.location.lat == pytest.approx(47.61, abs=0.5)


class TestCityDatabase:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            CityDatabase([])

    def test_duplicate_names_rejected(self):
        city = City("X", "US", GeoPoint(0, 0), 1000.0, "na-east")
        with pytest.raises(ConfigurationError):
            CityDatabase([city, city])

    def test_in_regions_filters(self, db):
        sub = db.in_regions(["apac"])
        assert all(c.region == "apac" for c in sub)
        assert len(sub) < len(db)

    def test_in_regions_unknown(self, db):
        with pytest.raises(ConfigurationError):
            db.in_regions(["middle-earth"])

    def test_total_population(self, db):
        assert db.total_population() == pytest.approx(
            sum(c.population for c in db)
        )


class TestSampling:
    def test_sample_distinct(self, db):
        rng = np.random.default_rng(0)
        cities = db.sample(rng, 30)
        assert len({c.name for c in cities}) == 30

    def test_sample_deterministic(self, db):
        a = [c.name for c in db.sample(np.random.default_rng(5), 10)]
        b = [c.name for c in db.sample(np.random.default_rng(5), 10)]
        assert a == b

    def test_sample_too_many(self, db):
        with pytest.raises(ConfigurationError):
            db.sample(np.random.default_rng(0), len(db) + 1)

    def test_sample_zero_rejected(self, db):
        with pytest.raises(ConfigurationError):
            db.sample(np.random.default_rng(0), 0)

    def test_population_weighting_prefers_big_cities(self, db):
        # Across many draws, population-weighted sampling should pick the
        # biggest city far more often than a tiny one.
        rng = np.random.default_rng(1)
        big_hits = 0
        for _ in range(200):
            chosen = {c.name for c in db.sample(rng, 5)}
            if "Tokyo" in chosen:
                big_hits += 1
        assert big_hits > 20  # Tokyo is ~4% of world mass; 5 draws per trial

    def test_city_population_validation(self):
        with pytest.raises(ConfigurationError):
            City("Bad", "XX", GeoPoint(0, 0), 0.0, "na-east")
