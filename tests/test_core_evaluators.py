"""Tests for repro.core.evaluators."""

import numpy as np
import pytest

from repro.core.evaluators import (
    LoadAwareEvaluator,
    StaticCostEvaluator,
    StaticPreferenceEvaluator,
)
from repro.core.mapping import LinearDeltaMapper
from repro.core.preferences import PreferenceRange
from repro.errors import PreferenceError
from repro.routing.costs import build_pair_cost_table
from repro.routing.exits import early_exit_choices
from repro.routing.flows import build_full_flowset


class TestStaticPreferenceEvaluator:
    def test_basic(self):
        ev = StaticPreferenceEvaluator(
            np.array([[0, 1], [0, -1]]), np.array([0, 0])
        )
        assert ev.n_flows == 2
        assert ev.n_alternatives == 2
        assert ev.preferences()[0, 1] == 1

    def test_stages_consumed_on_reassign(self):
        first = np.array([[0, 0]])
        second = np.array([[0, 1]])
        ev = StaticPreferenceEvaluator(first, np.array([0]), stages=[second])
        ev.reassign(np.array([True]))
        assert ev.preferences()[0, 1] == 1
        # Further reassigns are no-ops once stages run out.
        ev.reassign(np.array([True]))
        assert ev.preferences()[0, 1] == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(PreferenceError):
            StaticPreferenceEvaluator(
                np.array([[0, 99]]), np.array([0]), PreferenceRange(5)
            )

    def test_stage_shape_checked(self):
        with pytest.raises(PreferenceError):
            StaticPreferenceEvaluator(
                np.array([[0, 0]]), np.array([0]),
                stages=[np.zeros((2, 2), dtype=np.int64)],
            )

    def test_true_delta_is_class(self):
        ev = StaticPreferenceEvaluator(np.array([[0, 3]]), np.array([0]))
        assert ev.true_delta(0, 1) == 3.0


class TestStaticCostEvaluator:
    def test_prefs_from_costs(self):
        costs = np.array([[10.0, 6.0]])
        ev = StaticCostEvaluator(
            costs, np.array([0]), LinearDeltaMapper(PreferenceRange(10), unit=2.0)
        )
        assert ev.preferences()[0, 1] == 2

    def test_true_delta_is_metric(self):
        costs = np.array([[10.0, 6.0]])
        ev = StaticCostEvaluator(
            costs, np.array([0]), LinearDeltaMapper(PreferenceRange(10), unit=2.0)
        )
        assert ev.true_delta(0, 1) == 4.0
        assert ev.true_delta(0, 0) == 0.0

    def test_commit_and_reassign_are_noops(self):
        costs = np.array([[10.0, 6.0]])
        ev = StaticCostEvaluator(
            costs, np.array([0]), LinearDeltaMapper(PreferenceRange(10))
        )
        before = ev.preferences().copy()
        ev.commit(0, 1)
        ev.reassign(np.array([True]))
        assert np.array_equal(ev.preferences(), before)


class TestLoadAwareEvaluator:
    @pytest.fixture()
    def setup(self, fig2):
        """The Figure 2 post-failure scenario wired for evaluation."""
        from repro.routing.flows import Flow, FlowSet

        post = fig2.post_failure_pair
        flows = [
            Flow(index=i, src=src, dst=dst)
            for i, (_, src, dst) in enumerate(fig2.flows)
        ]
        table = build_pair_cost_table(post, FlowSet(post, flows))
        caps_b = np.asarray(
            [fig2.capacities_delta[l.index] for l in post.isp_b.links]
        )
        # Background: f1 on Top->Dst, f4 on Bot->Dst, one unit each.
        base_b = np.zeros(post.isp_b.n_links())
        for link in post.isp_b.links:
            base_b[link.index] = 1.0
        defaults = np.array([0, 0])  # both affected flows default to Bot
        return table, caps_b, base_b, defaults

    def test_initial_independence(self, setup):
        """Figure 3: B is initially indifferent (flows scored in isolation)."""
        table, caps_b, base_b, defaults = setup
        ev = LoadAwareEvaluator(
            table, "b", caps_b, defaults, base_loads=base_b,
            range_=PreferenceRange(1), ratio_unit=0.25,
        )
        assert np.all(ev.preferences() == 0)

    def test_reassignment_reveals_preference(self, setup):
        """After f2 commits to Bot, B prefers f3 via Top (class +1)."""
        table, caps_b, base_b, defaults = setup
        ev = LoadAwareEvaluator(
            table, "b", caps_b, defaults, base_loads=base_b,
            range_=PreferenceRange(1), ratio_unit=0.25,
        )
        ev.commit(0, 0)  # f2 -> Bot
        ev.reassign(np.array([False, True]))
        prefs = ev.preferences()
        assert prefs[1, 1] == 1  # f3 via Top now preferred
        assert prefs[1, 0] == 0  # default stays class 0

    def test_true_delta_reflects_ratio(self, setup):
        table, caps_b, base_b, defaults = setup
        ev = LoadAwareEvaluator(
            table, "b", caps_b, defaults, base_loads=base_b,
            range_=PreferenceRange(1), ratio_unit=0.25,
        )
        ev.commit(0, 0)
        # f3 via Top avoids the 1.5 ratio on Bot->Dst: delta = 1.5 - 1.0.
        assert ev.true_delta(1, 1) == pytest.approx(0.5)

    def test_bad_ratio_unit(self, setup):
        table, caps_b, base_b, defaults = setup
        with pytest.raises(PreferenceError):
            LoadAwareEvaluator(table, "b", caps_b, defaults,
                               base_loads=base_b, ratio_unit=0.0)

    def test_defaults_shape_checked(self, setup):
        table, caps_b, base_b, _ = setup
        with pytest.raises(PreferenceError):
            LoadAwareEvaluator(table, "b", caps_b, np.array([0]),
                               base_loads=base_b)


class TestLoadAwareOnDataset(object):
    def test_preferences_within_range(self, small_pair):
        table = build_pair_cost_table(small_pair, build_full_flowset(small_pair))
        caps = np.full(small_pair.isp_a.n_links(), 5.0)
        defaults = early_exit_choices(table)
        ev = LoadAwareEvaluator(table, "a", caps, defaults,
                                range_=PreferenceRange(10))
        prefs = ev.preferences()
        assert prefs.min() >= -10 and prefs.max() <= 10
        rows = np.arange(table.n_flows)
        assert np.all(prefs[rows, defaults] == 0)
