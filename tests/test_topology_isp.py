"""Tests for repro.topology.isp."""

import pytest

from repro.errors import TopologyError
from repro.geo.coords import GeoPoint
from repro.topology.builders import build_custom_isp, build_line_isp, build_mesh_isp
from repro.topology.elements import Link, PoP
from repro.topology.isp import ISPTopology


def _pops(cities):
    return [
        PoP(index=i, city=c, location=GeoPoint(40.0, -100.0 + i))
        for i, c in enumerate(cities)
    ]


class TestConstruction:
    def test_minimal(self):
        isp = ISPTopology(
            "t", _pops(["A", "B"]), [Link(0, 0, 1, 1.0, 1.0)]
        )
        assert isp.n_pops() == 2
        assert isp.n_links() == 1

    def test_empty_name_rejected(self):
        with pytest.raises(TopologyError):
            ISPTopology("", _pops(["A", "B"]), [Link(0, 0, 1, 1.0, 1.0)])

    def test_no_pops_rejected(self):
        with pytest.raises(TopologyError):
            ISPTopology("t", [], [])

    def test_non_dense_pop_indices(self):
        pops = [PoP(index=1, city="A", location=GeoPoint(0, 0))]
        with pytest.raises(TopologyError):
            ISPTopology("t", pops, [])

    def test_duplicate_cities_rejected(self):
        pops = _pops(["A", "A"])
        with pytest.raises(TopologyError):
            ISPTopology("t", pops, [Link(0, 0, 1, 1.0, 1.0)])

    def test_link_to_unknown_pop(self):
        with pytest.raises(TopologyError):
            ISPTopology("t", _pops(["A", "B"]), [Link(0, 0, 5, 1.0, 1.0)])

    def test_duplicate_links_rejected(self):
        links = [Link(0, 0, 1, 1.0, 1.0), Link(1, 1, 0, 2.0, 2.0)]
        with pytest.raises(TopologyError):
            ISPTopology("t", _pops(["A", "B"]), links)

    def test_non_dense_link_indices(self):
        with pytest.raises(TopologyError):
            ISPTopology("t", _pops(["A", "B"]), [Link(3, 0, 1, 1.0, 1.0)])

    def test_disconnected_rejected(self):
        pops = _pops(["A", "B", "C", "D"])
        links = [Link(0, 0, 1, 1.0, 1.0), Link(1, 2, 3, 1.0, 1.0)]
        with pytest.raises(TopologyError):
            ISPTopology("t", pops, links)

    def test_single_pop_allowed(self):
        isp = ISPTopology("t", _pops(["A"]), [])
        assert isp.n_pops() == 1


class TestAccessors:
    @pytest.fixture()
    def isp(self):
        return build_line_isp("line", ["A", "B", "C"])

    def test_pop_lookup(self, isp):
        assert isp.pop(1).city == "B"

    def test_pop_out_of_range(self, isp):
        with pytest.raises(TopologyError):
            isp.pop(10)

    def test_city_lookup(self, isp):
        assert isp.pop_in_city("C").index == 2

    def test_unknown_city(self, isp):
        with pytest.raises(TopologyError):
            isp.pop_in_city("Nowhere")

    def test_cities(self, isp):
        assert isp.cities() == frozenset({"A", "B", "C"})

    def test_has_city(self, isp):
        assert isp.has_city("A")
        assert not isp.has_city("Z")

    def test_link_between(self, isp):
        link = isp.link_between(1, 0)
        assert link.endpoints == (0, 1)

    def test_link_between_missing(self, isp):
        with pytest.raises(TopologyError):
            isp.link_between(0, 2)

    def test_degree(self, isp):
        assert isp.degree(0) == 1
        assert isp.degree(1) == 2

    def test_total_link_km(self, isp):
        assert isp.total_link_km() == pytest.approx(1000.0)

    def test_repr(self, isp):
        assert "line" in repr(isp)


class TestMeshDetection:
    def test_mesh_detected(self):
        mesh = build_mesh_isp("m", ["A", "B", "C", "D"])
        assert mesh.is_logical_mesh()
        assert mesh.edge_density() == 1.0

    def test_line_not_mesh(self):
        line = build_line_isp("l", ["A", "B", "C", "D", "E"])
        assert not line.is_logical_mesh()

    def test_triangle_too_small_for_mesh(self):
        tri = build_custom_isp(
            "tri",
            [("A", 0, 0), ("B", 0, 1), ("C", 1, 0)],
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)],
        )
        assert tri.edge_density() == 1.0
        assert not tri.is_logical_mesh()  # needs >= 4 PoPs


class TestEquality:
    def test_equal_topologies(self):
        a = build_line_isp("x", ["A", "B"])
        b = build_line_isp("x", ["A", "B"])
        assert a == b
        assert hash(a) == hash(b)

    def test_different_names_not_equal(self):
        a = build_line_isp("x", ["A", "B"])
        b = build_line_isp("y", ["A", "B"])
        assert a != b

    def test_not_equal_other_type(self):
        assert build_line_isp("x", ["A", "B"]) != 42


class TestGeographicSpan:
    def test_span_positive(self):
        isp = build_line_isp("l", ["A", "B", "C"], spacing_km=500.0)
        assert isp.geographic_span_km() > 500
