"""The availability experiment: metrics, degradation, sweep determinism."""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.experiments.availability import (
    AvailabilityExperimentResult,
    conditional_value_at_risk,
    expected_mel,
    run_availability_experiment,
    run_pair_availability,
    value_at_risk,
)
from repro.experiments.config import ExperimentConfig
from repro.metrics.tail import cvar_matrix
from repro.routing.scenarios import FailureModel


@pytest.fixture(scope="module")
def tiny_config():
    return replace(ExperimentConfig.quick(), max_pairs_bandwidth=2)


class _UnitWorkload:
    """All flows size 1.0 — the distance-experiment convention."""

    def size_fn(self, pair):
        return lambda src, dst: 1.0


# ---------------------------------------------------------------------------
# Metric functions on hand-built distributions
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_expected_mel_weights_and_conditions_on_finite(self):
        probs = np.array([0.5, 0.3, 0.2])
        mels = np.array([1.0, 2.0, math.inf])
        # Conditional on the routable mass 0.8: (0.5*1 + 0.3*2) / 0.8
        assert expected_mel(probs, mels) == pytest.approx(1.375)
        assert expected_mel(
            np.array([1.0]), np.array([math.inf])
        ) == math.inf

    def test_var_is_the_quantile_of_the_weighted_distribution(self):
        probs = np.array([0.9, 0.06, 0.04])
        mels = np.array([0.5, 1.5, 3.0])
        assert value_at_risk(probs, mels, 1.0, 0.5) == 0.5
        assert value_at_risk(probs, mels, 1.0, 0.95) == 1.5
        assert value_at_risk(probs, mels, 1.0, 0.97) == 3.0

    def test_cvar_splits_the_straddling_atom(self):
        probs = np.array([0.9, 0.06, 0.04])
        mels = np.array([0.5, 1.5, 3.0])
        # 5% tail: 0.04 mass at 3.0 plus 0.01 of the 1.5 atom.
        want = (0.04 * 3.0 + 0.01 * 1.5) / 0.05
        assert conditional_value_at_risk(
            probs, mels, 1.0, 0.95
        ) == pytest.approx(want)
        assert conditional_value_at_risk(probs, mels, 1.0, 0.5) >= \
            value_at_risk(probs, mels, 1.0, 0.5)

    def test_uncovered_mass_takes_the_worst_enumerated_mel(self):
        probs = np.array([0.9, 0.05])
        mels = np.array([1.0, 2.0])
        coverage = 0.95
        # The missing 5% sits at MEL 2.0 (documented lower bound), so the
        # 90th-percentile VaR is still 1.0 but the 94th hits 2.0.
        assert value_at_risk(probs, mels, coverage, 0.89) == 1.0
        assert value_at_risk(probs, mels, coverage, 0.94) == 2.0
        # CVaR over the worst 10%: 0.05 enumerated + 0.05 uncovered at 2.0.
        assert conditional_value_at_risk(
            probs, mels, coverage, 0.9
        ) == pytest.approx(2.0)

    def test_unroutable_mass_dominates_the_tail(self):
        probs = np.array([0.97, 0.03])
        mels = np.array([1.0, math.inf])
        assert value_at_risk(probs, mels, 1.0, 0.99) == math.inf
        assert conditional_value_at_risk(probs, mels, 1.0, 0.99) == math.inf
        assert value_at_risk(probs, mels, 1.0, 0.9) == 1.0

    def test_bad_quantiles_rejected(self):
        probs, mels = np.array([1.0]), np.array([1.0])
        for q in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError, match="quantile"):
                value_at_risk(probs, mels, 1.0, q)
            with pytest.raises(ConfigurationError, match="quantile"):
                conditional_value_at_risk(probs, mels, 1.0, q)


# ---------------------------------------------------------------------------
# Per-pair evaluation, including the severed-everything degradation path
# ---------------------------------------------------------------------------


class TestPairAvailability:
    @pytest.fixture(scope="class")
    def pair(self, request):
        fig2 = request.getfixturevalue("fig2")
        return fig2.pair

    def test_outcomes_cover_every_scenario(self, pair, tiny_config):
        model = FailureModel(link_probability=0.1, cutoff=1e-6)
        result = run_pair_availability(
            pair, tiny_config, model, _UnitWorkload()
        )
        assert result.n_alternatives == pair.n_interconnections()
        assert result.n_scenarios == len(result.outcomes) > 1
        assert result.outcomes[0].failed == ()  # all-up scenario first
        assert result.outcomes[0].n_affected == 0
        assert 0.0 < result.coverage <= 1.0 + 1e-12
        probs = sum(o.probability for o in result.outcomes)
        assert probs == pytest.approx(result.coverage)

    def test_severing_every_interconnection_degrades_gracefully(
        self, pair, tiny_config
    ):
        # p=0.4 puts the all-failed scenario (0.4^3 = 6.4%) well above the
        # cutoff, so the degenerate path is exercised, not skipped.
        model = FailureModel(link_probability=0.4, cutoff=1e-3)
        result = run_pair_availability(
            pair, tiny_config, model, _UnitWorkload()
        )
        severed = [o for o in result.outcomes if not o.routable]
        assert len(severed) == 1
        (outcome,) = severed
        assert outcome.failed == tuple(range(pair.n_interconnections()))
        assert outcome.n_affected == result.n_flows
        assert outcome.unroutable_demand == pytest.approx(
            result.total_demand
        )
        assert math.isinf(outcome.mel_default_a)
        assert math.isinf(outcome.mel_negotiated_b)
        assert result.p_unroutable == pytest.approx(outcome.probability)
        # Metrics stay well-defined: the disconnection mass lands in the
        # tail, the expectation conditions on the routable mass.
        metrics = result.metrics("negotiated", "a", quantiles=(0.5,))
        assert math.isfinite(metrics.expected)
        assert metrics.p_unroutable > 0.0
        deep = result.metrics(
            "negotiated", "a", quantiles=(1.0 - outcome.probability / 2,)
        )
        assert math.isinf(deep.cvar[0][1])

    def test_batch_and_legacy_table_engines_bit_identical(
        self, pair, tiny_config
    ):
        model = FailureModel(link_probability=0.2, cutoff=1e-4)
        batch = run_pair_availability(
            pair, tiny_config, model, _UnitWorkload(), table_engine="batch"
        )
        legacy = run_pair_availability(
            pair, tiny_config, model, _UnitWorkload(), table_engine="legacy"
        )
        assert batch == legacy  # dataclass equality: exact floats

    def test_unknown_table_engine_rejected(self, pair, tiny_config):
        with pytest.raises(ConfigurationError, match="table_engine"):
            run_pair_availability(
                pair, tiny_config, FailureModel(), _UnitWorkload(),
                table_engine="nope",
            )


# ---------------------------------------------------------------------------
# The sweep: serial == parallel == interrupt -> resume, bit-identically
# ---------------------------------------------------------------------------

_SWEEP_KW = dict(link_probability=0.05, cutoff=5e-3, max_failed=2)


class TestAvailabilitySweep:
    def test_serial_parallel_resume_bit_identical(
        self, tiny_config, tmp_path
    ):
        serial = run_availability_experiment(tiny_config, **_SWEEP_KW)
        assert isinstance(serial, AvailabilityExperimentResult)
        assert len(serial.pairs) == 2
        assert serial.total_scenarios() > 0

        parallel = run_availability_experiment(
            tiny_config, workers=2, **_SWEEP_KW
        )
        assert parallel.pairs == serial.pairs

        checkpointed = run_availability_experiment(
            tiny_config, checkpoint_dir=tmp_path / "ck", **_SWEEP_KW
        )
        assert checkpointed.pairs == serial.pairs
        # Simulate an interrupt: drop one shard, resume recomputes just it.
        shards = sorted((tmp_path / "ck" / "availability").glob("unit-*.pkl"))
        assert len(shards) == 2
        shards[0].unlink()
        resumed = run_availability_experiment(
            tiny_config, checkpoint_dir=tmp_path / "ck", resume=True,
            **_SWEEP_KW,
        )
        assert resumed.pairs == serial.pairs

    def test_srg_params_flow_through(self, tiny_config):
        result = run_availability_experiment(
            tiny_config,
            link_probability=0.05,
            shared_risk_groups=((0, 1),),
            cutoff=1e-3,
            max_failed=1,
        )
        for pair_result in result.pairs:
            assert any(
                o.failed == (0, 1) for o in pair_result.outcomes
            ), "the shared-risk group must fail as a unit"

    def test_aggregates_and_summary(self, tiny_config):
        from repro.experiments.availability import _availability_summary

        result = run_availability_experiment(tiny_config, **_SWEEP_KW)
        cdf = result.cdf_expected("negotiated", "a")
        assert len(cdf.values) == len(result.pairs)
        assert result.mean_coverage() > 0.9
        claims = dict(_availability_summary(result))
        assert claims["pairs"] == "2"
        assert int(claims["scenarios scored"]) == result.total_scenarios()


class TestAvailabilityCli:
    def test_cli_command_runs_and_reports(self, capsys, monkeypatch):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(
            ["availability", "--preset", "quick", "--link-prob", "0.05",
             "--cutoff", "1e-2", "--max-failed", "1",
             "--quantiles", "0.9"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "availability" in text
        assert "scenarios scored" in text
        assert "CVaR@0.9" in text

    def test_cli_lists_availability_sweep(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["sweep", "availability"])
        assert args.scenario == "availability"


@pytest.mark.slow
class TestAvailabilityAtScale:
    """Full quick-preset enumeration (hundreds of scenarios per sweep)."""

    def test_full_quick_sweep_parallel_bit_identical(self):
        config = ExperimentConfig.quick()
        serial = run_availability_experiment(
            config, link_probability=0.05, cutoff=1e-6
        )
        parallel = run_availability_experiment(
            config, link_probability=0.05, cutoff=1e-6, workers=2
        )
        assert parallel.pairs == serial.pairs
        assert serial.total_scenarios() >= 100


# ---------------------------------------------------------------------------
# Hypothesis properties for the tail metrics (shared with the scenario-aware
# evaluator via repro.metrics.tail)
# ---------------------------------------------------------------------------


_MEL = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@st.composite
def _weighted_distribution(draw):
    """Integer-weighted finite-MEL distribution (weights 1..5, 1..8 atoms).

    Integer weights make the distribution exactly replicable: repeating
    each MEL ``w`` times gives an equal-mass sample of size ``N = sum(w)``
    whose order statistics define the brute-force CVaR.
    """
    weights = draw(
        st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=8)
    )
    mels = draw(
        st.lists(_MEL, min_size=len(weights), max_size=len(weights))
    )
    return np.array(weights, dtype=float), np.array(mels, dtype=float)


class TestTailMetricProperties:
    """CVaR >= VaR and CVaR >= expected are pinned *separately*: VaR and
    the mean are not ordered against each other in general, so the chain
    ``CVaR >= VaR >= expected`` does not hold and is deliberately not
    asserted."""

    @given(dist=_weighted_distribution(), quantile=st.floats(0.05, 0.95))
    @settings(max_examples=60, deadline=None)
    def test_cvar_dominates_var_and_the_mean(self, dist, quantile):
        weights, mels = dist
        probs = weights / weights.sum()
        var = value_at_risk(probs, mels, 1.0, quantile)
        cvar = conditional_value_at_risk(probs, mels, 1.0, quantile)
        assert cvar >= var - 1e-9
        assert cvar >= expected_mel(probs, mels) - 1e-9

    @given(
        dist=_weighted_distribution(),
        quantiles=st.tuples(st.floats(0.05, 0.95), st.floats(0.05, 0.95)),
    )
    @settings(max_examples=60, deadline=None)
    def test_var_and_cvar_monotone_in_the_quantile(self, dist, quantiles):
        weights, mels = dist
        probs = weights / weights.sum()
        q_lo, q_hi = sorted(quantiles)
        assert value_at_risk(probs, mels, 1.0, q_hi) >= value_at_risk(
            probs, mels, 1.0, q_lo
        )
        assert conditional_value_at_risk(
            probs, mels, 1.0, q_hi
        ) >= conditional_value_at_risk(probs, mels, 1.0, q_lo) - 1e-9

    @given(dist=_weighted_distribution(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_atom_split_matches_integer_replication(self, dist, data):
        """On atom boundaries the split CVaR equals the brute-force mean of
        the ``k`` largest equal-mass replicated samples."""
        weights, mels = dist
        n = int(weights.sum())
        assume(n >= 2)
        k = data.draw(st.integers(min_value=1, max_value=n - 1), label="k")
        replicated = np.repeat(mels, weights.astype(int))
        brute = float(np.sort(replicated)[-k:].mean())
        got = conditional_value_at_risk(weights / n, mels, 1.0, 1.0 - k / n)
        assert got == pytest.approx(brute, rel=1e-6, abs=1e-6)

    @given(
        dist=_weighted_distribution(),
        quantile=st.floats(0.05, 0.95),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_cvar_matrix_matches_the_scalar_per_candidate(
        self, dist, quantile, data
    ):
        weights, mels = dist
        probs = weights / weights.sum()
        n_atoms = mels.size
        n_candidates = data.draw(st.integers(1, 3), label="n_candidates")
        columns = data.draw(
            st.lists(
                st.lists(_MEL, min_size=n_atoms, max_size=n_atoms),
                min_size=n_candidates,
                max_size=n_candidates,
            ),
            label="columns",
        )
        values = np.array(columns, dtype=float).T  # (S, C)
        got = cvar_matrix(values, probs, quantile)
        for c in range(n_candidates):
            want = conditional_value_at_risk(
                probs, values[:, c], 1.0, quantile
            )
            assert got[c] == pytest.approx(want, rel=1e-6, abs=1e-6)
