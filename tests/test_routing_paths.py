"""Tests for repro.routing.paths."""

import pytest

from repro.errors import RoutingError
from repro.routing.paths import IntradomainRouting
from repro.topology.builders import build_custom_isp, build_line_isp


@pytest.fixture()
def diamond():
    """A diamond where the weighted shortest path differs from hop count.

    A -- B -- D is weight 2 + 2 = 4 but length 10 + 10 = 20;
    A -- C -- D is weight 3 + 3 = 6 but length 2 + 2 = 4.
    Routing follows weights, the distance metric follows lengths.
    """
    return build_custom_isp(
        "diamond",
        [("A", 40, -100), ("B", 41, -100), ("C", 39, -100), ("D", 40, -99)],
        [(0, 1, 2.0), (1, 3, 2.0), (0, 2, 3.0), (2, 3, 3.0)],
        lengths=[10.0, 10.0, 2.0, 2.0],
    )


class TestShortestPaths:
    def test_weight_distance(self, diamond):
        routing = IntradomainRouting(diamond)
        assert routing.weight_distance(0, 3) == 4.0

    def test_path_follows_weights_not_lengths(self, diamond):
        routing = IntradomainRouting(diamond)
        assert routing.path(0, 3) == [0, 1, 3]

    def test_geo_distance_of_routed_path(self, diamond):
        routing = IntradomainRouting(diamond)
        # The routed (weight-optimal) path is geographically longer.
        assert routing.geo_distance_km(0, 3) == 20.0

    def test_path_links(self, diamond):
        routing = IntradomainRouting(diamond)
        links = routing.path_links(0, 3)
        assert list(links) == [0, 1]

    def test_trivial_path(self, diamond):
        routing = IntradomainRouting(diamond)
        assert routing.weight_distance(2, 2) == 0.0
        assert routing.path(2, 2) == [2]
        assert len(routing.path_links(2, 2)) == 0
        assert routing.geo_distance_km(2, 2) == 0.0

    def test_unknown_pop(self, diamond):
        routing = IntradomainRouting(diamond)
        with pytest.raises(Exception):
            routing.weight_distance(9, 0)

    def test_symmetry_on_undirected_graph(self, diamond):
        routing = IntradomainRouting(diamond)
        assert routing.weight_distance(0, 3) == routing.weight_distance(3, 0)
        assert routing.geo_distance_km(0, 3) == routing.geo_distance_km(3, 0)


class TestCaching:
    def test_distances_to_all(self):
        line = build_line_isp("l", ["A", "B", "C"], spacing_km=100.0)
        routing = IntradomainRouting(line)
        dists = routing.distances_to_all(0)
        assert dists[0] == 0.0
        assert dists[2] == pytest.approx(200.0)

    def test_warm_does_not_change_results(self, diamond):
        cold = IntradomainRouting(diamond)
        warm = IntradomainRouting(diamond)
        warm.warm([0, 1, 2, 3])
        for src in range(4):
            for dst in range(4):
                assert cold.weight_distance(src, dst) == warm.weight_distance(
                    src, dst
                )

    def test_repeated_queries_consistent(self, diamond):
        routing = IntradomainRouting(diamond)
        first = routing.geo_distance_km(0, 3)
        second = routing.geo_distance_km(0, 3)
        assert first == second


class TestLinePaths:
    def test_chain_distance_accumulates(self):
        line = build_line_isp("l", ["A", "B", "C", "D"], spacing_km=250.0)
        routing = IntradomainRouting(line)
        assert routing.geo_distance_km(0, 3) == pytest.approx(750.0)
        assert routing.path(0, 3) == [0, 1, 2, 3]
