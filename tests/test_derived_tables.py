"""Failure-case fast path: derived tables vs legacy per-case rebuilds.

The derive-don't-recompute contract, on both axes of the (F, I) space:

* column axis — evaluating one interconnection failure does zero routing
  work; the post-failure cost table (dense arrays, ragged link tables,
  compiled CSR incidence, flowset) is *derived* from the pre-failure table
  by dropping the failed column, and must equal the legacy
  ``build_full_flowset`` + ``build_pair_cost_table`` rebuild bit for bit;
* flow axis — restricting negotiation to the affected flows does zero
  recompilation; ``PairCostTable.subset`` row-filters the table, the
  array-backed flowset view and the compiled incidence, and must equal the
  legacy per-flow rebuild (``engine="legacy"``) bit for bit.

Both contracts hold all the way up to complete ``BandwidthCaseResult``s.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, RoutingError, TrafficError
from repro.experiments.bandwidth import (
    _build_context,
    run_bandwidth_case,
    run_pair_cases,
)
from repro.experiments.config import ExperimentConfig
from repro.geo.population import PopulationModel
from repro.routing.costs import build_pair_cost_table
from repro.routing.exits import early_exit_choices
from repro.routing.flows import build_full_flowset
from repro.routing.incidence import PathIncidence
from repro.topology.dataset import build_default_dataset
from repro.traffic.gravity import GravityWorkload


@pytest.fixture(scope="module")
def bandwidth_fixture():
    """A >=3-interconnection pair with gravity sizes and its case context."""
    config = ExperimentConfig.quick()
    dataset = build_default_dataset(config.dataset)
    pair = dataset.pairs(min_interconnections=3, max_pairs=1)[0]
    workload = GravityWorkload(PopulationModel(dataset.city_db))
    context = _build_context(pair, workload)
    return config, pair, workload, context


def _rebuild_post_table(context, k):
    failed_pair = context.pair.without_interconnection(k)
    flowset = build_full_flowset(failed_pair, context.size_fn)
    return build_pair_cost_table(
        failed_pair, flowset, context.routing_a, context.routing_b
    )


def _assert_tables_identical(derived, rebuilt):
    assert derived.pair.name == rebuilt.pair.name
    assert [ic.city for ic in derived.pair.interconnections] == [
        ic.city for ic in rebuilt.pair.interconnections
    ]
    for name in ("up_weight", "down_weight", "up_km", "down_km", "ic_km"):
        assert np.array_equal(getattr(derived, name), getattr(rebuilt, name)), name
    assert np.array_equal(derived.flowset.sizes(), rebuilt.flowset.sizes())
    for ragged_d, ragged_r in (
        (derived.up_links, rebuilt.up_links),
        (derived.down_links, rebuilt.down_links),
    ):
        assert len(ragged_d) == len(ragged_r)
        for row_d, row_r in zip(ragged_d, ragged_r):
            assert len(row_d) == len(row_r)
            for links_d, links_r in zip(row_d, row_r):
                assert np.array_equal(links_d, links_r)
    for side in "ab":
        inc_d, inc_r = derived.incidence(side), rebuilt.incidence(side)
        assert np.array_equal(inc_d.indptr, inc_r.indptr)
        assert np.array_equal(inc_d.indices, inc_r.indices)
        assert np.array_equal(inc_d.entry_flow, inc_r.entry_flow)
        assert inc_d.n_links == inc_r.n_links


class TestWithoutAlternative:
    def test_equals_legacy_rebuild(self, bandwidth_fixture):
        _, pair, _, context = bandwidth_fixture
        for k in range(pair.n_interconnections()):
            derived = context.table_pre.without_alternative(k)
            rebuilt = _rebuild_post_table(context, k)
            _assert_tables_identical(derived, rebuilt)
            # Early-exit decisions (ties included) must agree.
            assert np.array_equal(
                early_exit_choices(derived), early_exit_choices(rebuilt)
            )

    def test_incidence_derived_from_cache_not_recompiled(self, bandwidth_fixture):
        _, _, _, context = bandwidth_fixture
        table = context.table_pre
        table.incidence("a")
        derived = table.without_alternative(0)
        # The incidence was attached eagerly (no ragged recompilation on use).
        assert "_incidence_a" in derived.__dict__
        assert "_incidence_b" in derived.__dict__

    def test_derived_of_derived(self, bandwidth_fixture):
        _, pair, _, context = bandwidth_fixture
        if pair.n_interconnections() < 4:
            pytest.skip("needs >= 4 interconnections for a double failure")
        twice = context.table_pre.without_alternative(0).without_alternative(0)
        rebuilt = _rebuild_post_table(context, 0)
        rebuilt_twice = build_pair_cost_table(
            rebuilt.pair.without_interconnection(0),
            build_full_flowset(rebuilt.pair.without_interconnection(0),
                               context.size_fn),
            context.routing_a,
            context.routing_b,
        )
        _assert_tables_identical(twice, rebuilt_twice)

    def test_bad_index_rejected(self, bandwidth_fixture):
        _, pair, _, context = bandwidth_fixture
        with pytest.raises(Exception):
            context.table_pre.without_alternative(pair.n_interconnections())

    def test_incidence_without_alternative_structural(self):
        inc = PathIncidence.from_link_table(
            (
                (np.array([0, 1]), np.array([2]), np.array([], dtype=np.intp)),
                (np.array([3]), np.array([]), np.array([0, 2, 3])),
            ),
            n_links=4,
            n_alternatives=3,
        )
        dropped = inc.without_alternative(1)
        expected = PathIncidence.from_link_table(
            (
                (np.array([0, 1]), np.array([], dtype=np.intp)),
                (np.array([3]), np.array([0, 2, 3])),
            ),
            n_links=4,
            n_alternatives=2,
        )
        assert np.array_equal(dropped.indptr, expected.indptr)
        assert np.array_equal(dropped.indices, expected.indices)
        assert np.array_equal(dropped.entry_flow, expected.entry_flow)
        with pytest.raises(RoutingError):
            inc.without_alternative(3)


class TestBatchedBuild:
    def test_equals_legacy_build(self, bandwidth_fixture):
        _, pair, workload, context = bandwidth_fixture
        flowset = build_full_flowset(pair, workload.size_fn(pair))
        batched = build_pair_cost_table(pair, flowset)
        legacy = build_pair_cost_table(pair, flowset, engine="legacy")
        _assert_tables_identical(batched, legacy)

    def test_unknown_engine_rejected(self, bandwidth_fixture):
        _, pair, _, _ = bandwidth_fixture
        with pytest.raises(ConfigurationError):
            build_pair_cost_table(pair, build_full_flowset(pair), engine="nope")


class TestFlowsetView:
    def test_with_pair_shares_flows_and_sizes(self, bandwidth_fixture):
        _, pair, _, context = bandwidth_fixture
        flowset = context.table_pre.flowset
        reduced = pair.without_interconnection(0)
        view = flowset.with_pair(reduced)
        assert view.pair is reduced
        assert view.flows is flowset.flows
        assert view.sizes() is flowset.sizes()

    def test_sizes_cached_and_read_only(self, bandwidth_fixture):
        _, _, _, context = bandwidth_fixture
        sizes = context.table_pre.flowset.sizes()
        assert context.table_pre.flowset.sizes() is sizes
        with pytest.raises(ValueError):
            sizes[0] = 99.0

    def test_with_pair_rejects_other_isps(self, bandwidth_fixture, small_pair):
        _, _, _, context = bandwidth_fixture
        with pytest.raises(TrafficError):
            context.table_pre.flowset.with_pair(small_pair)


class TestSubsetEquivalence:
    """Flow-axis structural derivation: subset(engine="incidence") vs legacy."""

    @staticmethod
    def _index_sets(n_flows):
        return [
            np.array([0]),  # singleton, first row
            np.array([n_flows - 1]),  # singleton, last row
            np.arange(0, n_flows, 3),  # non-contiguous stride
            np.array([0, 1, n_flows // 2, n_flows - 1]),  # scattered
            np.arange(n_flows),  # full range
            np.arange(n_flows)[::-1].copy(),  # full range, reordered
        ]

    def test_equals_legacy_rebuild(self, bandwidth_fixture):
        _, _, _, context = bandwidth_fixture
        table = context.table_pre
        table.incidence("a")
        table.incidence("b")
        for idx in self._index_sets(table.n_flows):
            derived = table.subset(idx)
            legacy = table.subset(idx, engine="legacy")
            _assert_tables_identical(derived, legacy)

    def test_incidence_derived_from_cache_not_recompiled(self, bandwidth_fixture):
        _, _, _, context = bandwidth_fixture
        table = context.table_pre
        table.incidence("a")
        table.incidence("b")
        derived = table.subset(np.array([0, 2]))
        # Attached eagerly by the structural filter, not lazily recompiled.
        assert "_incidence_a" in derived.__dict__
        assert "_incidence_b" in derived.__dict__
        legacy = table.subset(np.array([0, 2]), engine="legacy")
        assert "_incidence_a" not in legacy.__dict__

    def test_subset_of_derived_failure_table(self, bandwidth_fixture):
        """The bandwidth composition: without_alternative then subset."""
        _, _, _, context = bandwidth_fixture
        table = context.table_pre
        table.incidence("a")
        table.incidence("b")
        post = table.without_alternative(0)
        idx = np.arange(0, post.n_flows, 2)
        _assert_tables_identical(
            post.subset(idx), post.subset(idx, engine="legacy")
        )

    def test_incidence_subset_rows_structural(self):
        link_table = (
            (np.array([0, 1]), np.array([2]), np.array([], dtype=np.intp)),
            (np.array([3]), np.array([], dtype=np.intp), np.array([0, 2, 3])),
            (np.array([1, 3]), np.array([0]), np.array([2])),
        )
        inc = PathIncidence.from_link_table(link_table, n_links=4, n_alternatives=3)
        for rows in ([1], [2, 0], [0, 1, 2], []):
            derived = inc.subset_rows(np.asarray(rows, dtype=np.intp))
            expected = PathIncidence.from_link_table(
                tuple(link_table[r] for r in rows), n_links=4, n_alternatives=3
            )
            assert np.array_equal(derived.indptr, expected.indptr), rows
            assert np.array_equal(derived.indices, expected.indices), rows
            assert np.array_equal(derived.entry_flow, expected.entry_flow), rows
        with pytest.raises(RoutingError):
            inc.subset_rows(np.array([3]))
        with pytest.raises(RoutingError):
            inc.subset_rows(np.array([-1]))

    def test_case_results_bit_identical_across_subset_engines(
        self, bandwidth_fixture
    ):
        config, pair, _, context = bandwidth_fixture
        for k in range(pair.n_interconnections()):
            includes = dict(
                include_unilateral=(k == 0),
                include_cheating=(k == 0),
                include_diverse=(k == 0),
            )
            fast = run_bandwidth_case(context, k, config, **includes)
            legacy_scope = run_bandwidth_case(
                context, k, config, subset_engine="legacy", **includes
            )
            assert fast == legacy_scope  # dataclass ==: every field, exact floats

    def test_no_recompilation_end_to_end(self, bandwidth_fixture, monkeypatch):
        """A warm context's case must never compile a ragged link table."""
        config, pair, workload, _ = bandwidth_fixture
        context = _build_context(pair, workload)  # compiles both incidences

        def forbidden(*args, **kwargs):  # pragma: no cover - fails the test
            raise AssertionError("ragged incidence compilation on the fast path")

        monkeypatch.setattr(PathIncidence, "from_link_table", forbidden)
        result = run_bandwidth_case(
            context, 0, config, include_unilateral=True,
            include_cheating=True, include_diverse=True,
        )
        assert result.n_affected >= 0


class TestCaseEquivalence:
    def test_full_case_results_bit_identical(self, bandwidth_fixture):
        config, pair, _, context = bandwidth_fixture
        for k in range(pair.n_interconnections()):
            fast = run_bandwidth_case(
                context, k, config,
                include_unilateral=True, include_cheating=True,
                include_diverse=True,
            )
            slow = run_bandwidth_case(
                context, k, config,
                include_unilateral=True, include_cheating=True,
                include_diverse=True, derived_tables=False,
            )
            assert fast == slow  # dataclass ==: every field, exact floats

    def test_no_per_case_rebuild_on_fast_path(
        self, bandwidth_fixture, monkeypatch
    ):
        """The derived path must never route or rebuild flowsets per case."""
        config, pair, workload, _ = bandwidth_fixture

        def forbidden(*args, **kwargs):  # pragma: no cover - fails the test
            raise AssertionError("per-case rebuild invoked on the fast path")

        context = _build_context(pair, workload)  # before the guards go up
        import repro.experiments.bandwidth as bw

        monkeypatch.setattr(bw, "build_full_flowset", forbidden)
        monkeypatch.setattr(bw, "build_pair_cost_table", forbidden)
        result = run_bandwidth_case(context, 0, config)
        assert result.n_affected >= 0

    def test_run_pair_cases_honors_flag(self, bandwidth_fixture):
        config, pair, workload, _ = bandwidth_fixture
        fast = run_pair_cases(
            pair, config, {"derived_tables": True}, workload
        )
        slow = run_pair_cases(
            pair, config, {"derived_tables": False}, workload
        )
        assert fast == slow
        assert len(fast) >= 1

    def test_experiment_matches_legacy_across_workers(self):
        """Derived tables + parallel workers vs legacy serial: identical."""
        from dataclasses import replace

        from repro.experiments.bandwidth import run_bandwidth_experiment

        config = replace(ExperimentConfig.quick(), max_pairs_bandwidth=2)
        legacy_serial = run_bandwidth_experiment(
            config, derived_tables=False, workers=1
        )
        derived_serial = run_bandwidth_experiment(config, workers=1)
        derived_parallel = run_bandwidth_experiment(config, workers=2)
        assert derived_serial.cases == legacy_serial.cases
        assert derived_parallel.cases == legacy_serial.cases
