"""Tests for the destination-based routing extension."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.distance import build_distance_problem
from repro.experiments.extensions import (
    build_destination_problem,
    run_destination_based_pair,
)
from repro.topology.dataset import build_default_dataset


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig.quick()


@pytest.fixture(scope="module")
def pair(config):
    dataset = build_default_dataset(config.dataset)
    return dataset.pairs(min_interconnections=2, max_pairs=1)[0]


class TestDestinationProblem:
    def test_row_count(self, pair):
        problem = build_destination_problem(pair)
        assert problem.n_rows == pair.isp_a.n_pops() + pair.isp_b.n_pops()
        assert problem.n_dst_b == pair.isp_b.n_pops()

    def test_aggregation_matches_source_problem(self, pair):
        source = build_distance_problem(pair)
        problem = build_destination_problem(pair, source)
        # Putting EVERY flow on interconnection 0 must give the same total
        # in both formulations.
        all_zero_src = np.zeros(source.n_flows, dtype=int)
        all_zero_dst = np.zeros(problem.n_rows, dtype=int)
        tot_src, a_src, b_src = source.totals(all_zero_src)
        tot_dst, a_dst, b_dst = problem.totals(all_zero_dst)
        assert tot_dst == pytest.approx(tot_src)
        assert a_dst == pytest.approx(a_src)
        assert b_dst == pytest.approx(b_src)

    def test_defaults_in_range(self, pair):
        problem = build_destination_problem(pair)
        assert problem.defaults.min() >= 0
        assert problem.defaults.max() < pair.n_interconnections()


class TestRunDestinationPair:
    def test_win_win_and_ordering(self, pair, config):
        result = run_destination_based_pair(pair, config)
        assert result.gain_a_negotiated >= -1e-9
        assert result.gain_b_negotiated >= -1e-9
        assert result.total_gain_negotiated <= result.total_gain_optimal + 1e-9

    def test_granularity_costs_little(self, pair, config):
        """Endnote 2: destination-based results similar to Section 5."""
        result = run_destination_based_pair(pair, config)
        # Destination aggregation cannot beat per-flow optimal, and should
        # land in the same ballpark as source-destination negotiation.
        assert result.total_gain_negotiated >= 0.0
