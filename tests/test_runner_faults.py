"""Sweep-runner fault tolerance: retries, failure surfacing, corrupt shards."""

from __future__ import annotations

import pickle
from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ConfigurationError, SweepUnitError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    CORRUPT_SHARD,
    CheckpointStore,
    ScenarioSpec,
    SweepRunner,
    register_scenario,
    sweep_fingerprint,
)


@pytest.fixture(scope="module")
def tiny_config():
    return replace(
        ExperimentConfig.quick(), max_pairs_distance=2, max_pairs_bandwidth=2
    )


def _counting_spec(name: str):
    """A spec whose unit failures are driven by files (works across forks).

    ``params["fail_dir"]`` holds one ``fail-<unit>`` file per unit that
    should fail; each attempt consumes one ``budget-<unit>-<n>`` token
    first, so "fail twice then succeed" is expressible across processes.
    Every attempt is appended to ``params["log"]``.
    """
    import os

    def units(config, params):
        return [0, 1, 2, 3]

    def run_unit(config, params, unit):
        with open(params["log"], "a", encoding="utf-8") as fh:
            fh.write(f"{unit}\n")
        budget = os.path.join(params["fail_dir"], f"budget-{unit}")
        remaining = 0
        if os.path.exists(budget):
            with open(budget, "r", encoding="utf-8") as fh:
                remaining = int(fh.read())
        if remaining > 0:
            with open(budget, "w", encoding="utf-8") as fh:
                fh.write(str(remaining - 1))
            raise ValueError(f"transient failure of unit {unit}")
        if os.path.exists(os.path.join(params["fail_dir"], f"fail-{unit}")):
            raise ValueError(f"persistent failure of unit {unit}")
        return unit * 10

    return register_scenario(ScenarioSpec(
        name=name,
        enumerate_units=units,
        run_unit=run_unit,
        reduce=lambda config, params, results: list(results),
    ))


def _attempts(log_path) -> list[str]:
    return log_path.read_text("utf-8").split()


class TestRetries:
    def test_transient_failure_is_retried_serial(self, tiny_config, tmp_path):
        spec = _counting_spec("_test_retry_serial")
        (tmp_path / "budget-1").write_text("2")  # unit 1 fails twice
        params = {"log": str(tmp_path / "log"), "fail_dir": str(tmp_path)}
        result = SweepRunner(max_retries=2, retry_backoff_s=0.0).run(
            spec, tiny_config, params
        )
        assert result == [0, 10, 20, 30]
        attempts = _attempts(tmp_path / "log")
        assert attempts.count("1") == 3  # two failures + the success
        assert attempts.count("0") == attempts.count("2") == 1

    def test_transient_failure_is_retried_parallel(
        self, tiny_config, tmp_path
    ):
        spec = _counting_spec("_test_retry_parallel")
        (tmp_path / "budget-2").write_text("1")
        params = {"log": str(tmp_path / "log"), "fail_dir": str(tmp_path)}
        result = SweepRunner(
            workers=2, max_retries=2, retry_backoff_s=0.0
        ).run(spec, tiny_config, params)
        assert result == [0, 10, 20, 30]
        assert _attempts(tmp_path / "log").count("2") == 2

    def test_exhausted_retries_surface_payload_and_spare_the_rest(
        self, tiny_config, tmp_path
    ):
        spec = _counting_spec("_test_retry_exhausted")
        (tmp_path / "fail-1").touch()
        params = {"log": str(tmp_path / "log"), "fail_dir": str(tmp_path)}
        with pytest.raises(SweepUnitError) as excinfo:
            SweepRunner(
                max_retries=1, retry_backoff_s=0.0,
                checkpoint_dir=tmp_path / "ck",
            ).run(spec, tiny_config, params)
        err = excinfo.value
        assert err.scenario == "_test_retry_exhausted"
        ((index, payload, inner),) = err.failures
        assert index == 1 and payload == 1
        assert isinstance(inner, ValueError)
        assert "persistent failure of unit 1" in str(err)
        # 1 original attempt + 1 retry, and the later units still ran.
        attempts = _attempts(tmp_path / "log")
        assert attempts.count("1") == 2
        assert attempts.count("2") == attempts.count("3") == 1
        # Completed shards were preserved for resume.
        store = CheckpointStore(
            tmp_path / "ck", spec.name,
            sweep_fingerprint(spec.name, tiny_config, params),
        )
        assert store.completed(4) == {0, 2, 3}

    def test_max_retries_zero_fails_fast(self, tiny_config, tmp_path):
        spec = _counting_spec("_test_retry_zero")
        (tmp_path / "fail-0").touch()
        params = {"log": str(tmp_path / "log"), "fail_dir": str(tmp_path)}
        with pytest.raises(SweepUnitError):
            SweepRunner(max_retries=0).run(spec, tiny_config, params)
        assert _attempts(tmp_path / "log").count("0") == 1

    def test_backoff_is_bounded_and_deterministic(self, monkeypatch):
        sleeps: list[float] = []
        monkeypatch.setattr(
            "repro.experiments.runner.time.sleep", sleeps.append
        )
        runner = SweepRunner(max_retries=8, retry_backoff_s=0.05)
        for attempt in range(1, 9):
            runner._backoff(attempt)
        assert sleeps == [
            min(0.05 * 2 ** (k - 1), 1.0) for k in range(1, 9)
        ]
        assert max(sleeps) == 1.0  # capped

    def test_negative_retry_config_rejected(self):
        with pytest.raises(ConfigurationError, match="max_retries"):
            SweepRunner(max_retries=-1)
        with pytest.raises(ConfigurationError, match="retry_backoff_s"):
            SweepRunner(retry_backoff_s=-0.1)


class TestCorruptShards:
    def _spec(self, name: str, log):
        return register_scenario(ScenarioSpec(
            name=name,
            enumerate_units=lambda config, params: [0, 1, 2],
            run_unit=lambda config, params, unit: (
                log.append(unit) or {"unit": unit, "data": np.arange(unit + 3)}
            ),
            reduce=lambda config, params, results: results,
        ))

    @staticmethod
    def _assert_identical(got, want):
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert g["unit"] == w["unit"]
            assert np.array_equal(g["data"], w["data"])

    def test_truncated_shard_is_rerun_bit_identically(
        self, tiny_config, tmp_path
    ):
        log: list[int] = []
        spec = self._spec("_test_truncated_shard", log)
        baseline = SweepRunner(checkpoint_dir=tmp_path / "ck").run(
            spec, tiny_config
        )
        store = CheckpointStore(
            tmp_path / "ck", spec.name,
            sweep_fingerprint(spec.name, tiny_config, {}),
        )
        shard = store.shard_path(1)
        raw = shard.read_bytes()
        shard.write_bytes(raw[: len(raw) // 2])  # truncate mid-bytes
        log.clear()
        resumed = SweepRunner(
            checkpoint_dir=tmp_path / "ck", resume=True
        ).run(spec, tiny_config)
        self._assert_identical(resumed, baseline)
        assert log == [1]  # only the corrupt unit re-ran
        # The re-written shard is complete again.
        with store.shard_path(1).open("rb") as fh:
            reloaded = pickle.load(fh)
        assert np.array_equal(reloaded["data"], baseline[1]["data"])

    def test_zero_size_shard_is_rerun(self, tiny_config, tmp_path):
        log: list[int] = []
        spec = self._spec("_test_empty_shard", log)
        baseline = SweepRunner(checkpoint_dir=tmp_path / "ck").run(
            spec, tiny_config
        )
        store = CheckpointStore(
            tmp_path / "ck", spec.name,
            sweep_fingerprint(spec.name, tiny_config, {}),
        )
        store.shard_path(2).write_bytes(b"")
        log.clear()
        resumed = SweepRunner(
            checkpoint_dir=tmp_path / "ck", resume=True
        ).run(spec, tiny_config)
        self._assert_identical(resumed, baseline)
        assert log == [2]

    def test_corruption_is_logged(self, tiny_config, tmp_path, caplog):
        import logging

        log: list[int] = []
        spec = self._spec("_test_logged_shard", log)
        SweepRunner(checkpoint_dir=tmp_path / "ck").run(spec, tiny_config)
        store = CheckpointStore(
            tmp_path / "ck", spec.name,
            sweep_fingerprint(spec.name, tiny_config, {}),
        )
        store.shard_path(0).write_bytes(b"\x80\x04garbage")
        with caplog.at_level(logging.WARNING, "repro.experiments.runner"):
            SweepRunner(checkpoint_dir=tmp_path / "ck", resume=True).run(
                spec, tiny_config
            )
        assert any("corrupt checkpoint shard" in r.getMessage()
                   for r in caplog.records)

    def test_try_load_reports_corrupt_and_unlinks(self, tmp_path):
        store = CheckpointStore(tmp_path, "s", "fp")
        store.dir.mkdir(parents=True)
        store.save(0, {"ok": True})
        assert store.try_load(0) == {"ok": True}
        store.shard_path(0).write_bytes(b"not a pickle")
        assert store.try_load(0) is CORRUPT_SHARD
        assert not store.shard_path(0).exists()
