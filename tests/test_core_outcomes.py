"""Tests for outcome records."""

import numpy as np
import pytest

from repro.core.outcomes import (
    NegotiationOutcome,
    RoundRecord,
    TerminationReason,
)
from repro.errors import NegotiationError


class TestRoundRecord:
    def test_combined(self):
        record = RoundRecord(
            round_index=0, proposer=0, flow_index=1, alternative=2,
            pref_a=3, pref_b=-1, accepted=True,
        )
        assert record.combined == 2

    def test_true_defaults_zero(self):
        record = RoundRecord(0, 0, 0, 0, 0, 0, False)
        assert record.true_a == 0.0 and record.true_b == 0.0


class TestNegotiationOutcome:
    def _outcome(self, **kwargs):
        base = dict(
            choices=np.array([0, 1]),
            negotiated=np.array([False, True]),
            gain_a=2,
            gain_b=3,
        )
        base.update(kwargs)
        return NegotiationOutcome(**base)

    def test_counts(self):
        out = self._outcome()
        assert out.n_negotiated == 1
        assert out.n_rounds == 0

    def test_shape_mismatch(self):
        with pytest.raises(NegotiationError):
            self._outcome(negotiated=np.array([True]))

    def test_accepted_rounds_filter(self):
        rounds = [
            RoundRecord(0, 0, 0, 1, 1, 1, True),
            RoundRecord(1, 1, 1, 0, 0, 0, False),
        ]
        out = self._outcome(rounds=rounds)
        assert len(out.accepted_rounds()) == 1

    def test_summary_mentions_reason(self):
        out = self._outcome(reason=TerminationReason.NO_JOINT_GAIN)
        assert "positive joint gain" in out.summary()

    def test_reason_values_are_descriptive(self):
        for reason in TerminationReason:
            assert len(reason.value) > 5
