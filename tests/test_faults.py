"""Fault plans and faulted coordination: atomicity, quarantine, replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.capacity.loads import link_loads
from repro.core.faults import FaultEvent, FaultPlan
from repro.core.multi_session import MultiSessionCoordinator
from repro.errors import ConfigurationError, FaultInjectionError
from repro.experiments.config import ExperimentConfig
from repro.routing.costs import build_pair_cost_table
from repro.routing.exits import early_exit_choices
from repro.routing.flows import build_full_flowset
from repro.routing.scenarios import FailureModel
from repro.topology.generator import GeneratorConfig
from repro.topology.internetwork import InternetworkConfig, build_internetwork
from repro.traffic.gravity import GravityWorkload
from repro.geo.cities import default_city_database
from repro.geo.population import PopulationModel

GEN = GeneratorConfig(min_pops=6, max_pops=14)


def _net(n_isps, shape="chain", seed=2005, **kwargs):
    return build_internetwork(
        InternetworkConfig(
            n_isps=n_isps, shape=shape, seed=seed, generator=GEN, **kwargs
        )
    )


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig.quick()


@pytest.fixture(scope="module")
def pair_defaults():
    """The 2-ISP net's edge defaults, computed the coordinator's way."""
    net = _net(2)
    pair = net.edges[0]
    workload = GravityWorkload(PopulationModel(default_city_database()))
    table = build_pair_cost_table(
        pair, build_full_flowset(pair, workload.size_fn(pair))
    )
    return table, early_exit_choices(table)


class TestFaultEventValidation:
    def test_bad_kind(self):
        with pytest.raises(ConfigurationError, match="kind"):
            FaultEvent(0, 0, "meteor")

    def test_negative_round(self):
        with pytest.raises(ConfigurationError, match="round_index"):
            FaultEvent(-1, 0, "abort")

    def test_negative_edge(self):
        with pytest.raises(ConfigurationError, match="edge_index"):
            FaultEvent(0, -2, "abort")

    def test_link_failure_needs_columns(self):
        with pytest.raises(ConfigurationError, match="column"):
            FaultEvent(0, 0, "link_failure")

    def test_link_failure_distinct_columns(self):
        with pytest.raises(ConfigurationError, match="distinct"):
            FaultEvent(0, 0, "link_failure", columns=(1, 1))

    def test_link_failure_nonnegative_columns(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            FaultEvent(0, 0, "link_failure", columns=(-1,))

    def test_abort_carries_no_columns(self):
        with pytest.raises(ConfigurationError, match="no columns"):
            FaultEvent(0, 0, "abort", columns=(1,))

    def test_deadline_needs_rounds(self):
        with pytest.raises(ConfigurationError, match="deadline_rounds"):
            FaultEvent(0, 0, "deadline")

    def test_abort_carries_no_deadline(self):
        with pytest.raises(ConfigurationError, match="deadline_rounds"):
            FaultEvent(0, 0, "abort", deadline_rounds=3)


class TestFaultPlan:
    def test_events_for_filters_and_preserves_order(self):
        plan = FaultPlan(
            events=(
                FaultEvent(1, 0, "abort"),
                FaultEvent(0, 0, "deadline", deadline_rounds=2),
                FaultEvent(0, 0, "abort"),
                FaultEvent(0, 1, "abort"),
            )
        )
        hits = plan.events_for(0, 0)
        assert [e.kind for e in hits] == ["deadline", "abort"]
        assert plan.events_for(2, 0) == ()
        assert not plan.is_empty()
        assert FaultPlan().is_empty()

    def test_seeded_is_deterministic(self):
        kwargs = dict(
            n_edges=3, n_rounds=5, n_alternatives=4,
            abort_rate=0.3, deadline_rate=0.2, link_failure_rate=0.3,
        )
        assert FaultPlan.seeded(7, **kwargs) == FaultPlan.seeded(7, **kwargs)
        assert FaultPlan.seeded(7, **kwargs) != FaultPlan.seeded(8, **kwargs)

    def test_seeded_never_severs_last_column(self):
        plan = FaultPlan.seeded(
            3, n_edges=2, n_rounds=50, n_alternatives=2,
            abort_rate=0.0, link_failure_rate=1.0,
        )
        failures = [e for e in plan.events if e.kind == "link_failure"]
        per_edge: dict[int, set[int]] = {}
        for e in failures:
            per_edge.setdefault(e.edge_index, set()).update(e.columns)
        for columns in per_edge.values():
            assert len(columns) <= 1  # one of two columns must survive

    def test_seeded_respects_max_failed_per_edge(self):
        plan = FaultPlan.seeded(
            3, n_edges=1, n_rounds=50, n_alternatives=8,
            link_failure_rate=1.0, max_failed_per_edge=2,
        )
        columns = set()
        for e in plan.events:
            columns.update(e.columns)
        assert len(columns) <= 2

    def test_seeded_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError, match="abort_rate"):
            FaultPlan.seeded(0, n_edges=1, n_rounds=1,
                             n_alternatives=2, abort_rate=1.5)

    def test_seeded_rejects_mismatched_alternatives(self):
        with pytest.raises(ConfigurationError, match="per edge"):
            FaultPlan.seeded(0, n_edges=2, n_rounds=1, n_alternatives=[3])


class TestPlanTopologyValidation:
    def test_edge_out_of_range(self, config):
        plan = FaultPlan(events=(FaultEvent(0, 9, "abort"),))
        with pytest.raises(FaultInjectionError, match="edge 9"):
            MultiSessionCoordinator(_net(2), config=config, fault_plan=plan)

    def test_column_out_of_range(self, config):
        plan = FaultPlan(
            events=(FaultEvent(0, 0, "link_failure", columns=(99,)),)
        )
        with pytest.raises(FaultInjectionError, match="column 99"):
            MultiSessionCoordinator(_net(2), config=config, fault_plan=plan)

    def test_cumulative_sever_all_rejected(self, config):
        net = _net(2)
        coordinator = MultiSessionCoordinator(net, config=config)
        n_alt = coordinator._tables[0].n_alternatives
        events = tuple(
            FaultEvent(r, 0, "link_failure", columns=(c,))
            for r, c in enumerate(range(n_alt))
        )
        with pytest.raises(FaultInjectionError, match="every interconnection"):
            MultiSessionCoordinator(
                _net(2), config=config, fault_plan=FaultPlan(events=events)
            )


class TestEmptyPlanBitIdentity:
    def test_empty_plan_matches_no_plan(self, config):
        baseline = MultiSessionCoordinator(
            _net(3), config=config, max_rounds=6, transit_scale=3.0
        ).run()
        gated = MultiSessionCoordinator(
            _net(3), config=config, max_rounds=6, transit_scale=3.0,
            fault_plan=FaultPlan(),
        ).run()
        assert gated.stop_reason == baseline.stop_reason == "converged"
        assert gated.mel_trajectory() == baseline.mel_trajectory()
        assert gated.initial_mel_per_isp == baseline.initial_mel_per_isp
        for mine, theirs in zip(gated.choices, baseline.choices):
            assert np.array_equal(mine, theirs)
        for round_g, round_b in zip(gated.rounds, baseline.rounds):
            assert round_g.records == round_b.records


class TestAbortAtomicity:
    def test_abort_keeps_last_adopted_assignment(self, config, pair_defaults):
        _, defaults = pair_defaults
        plan = FaultPlan(events=(FaultEvent(0, 0, "abort"),))
        coordinator = MultiSessionCoordinator(
            _net(2), config=config, max_rounds=4, fault_plan=plan
        )
        result = coordinator.run()
        aborted = result.rounds[0].records[0]
        assert aborted.fault == "abort"
        assert not aborted.ran_session
        assert not aborted.adopted
        assert aborted.n_changed == 0
        assert aborted.scope_size > 0
        # Atomic rollback: after the aborted round the edge still holds
        # its last adopted assignment (the defaults).
        assert result.rounds[0].global_mel == result.initial_mel

        # The work is merely deferred: the retry converges to exactly the
        # fault-free agreement.
        reference = MultiSessionCoordinator(
            _net(2), config=config, max_rounds=4
        ).run()
        assert result.converged
        assert np.array_equal(result.choices[0], reference.choices[0])
        assert result.final_mel == reference.final_mel
        # Defaults untouched by the faulted trajectory.
        assert np.array_equal(result.defaults[0], defaults)


class TestDeadlineDiscard:
    def test_deadline_expiry_discards_proposal(self, config):
        plan = FaultPlan(
            events=(FaultEvent(0, 0, "deadline", deadline_rounds=1),)
        )
        result = MultiSessionCoordinator(
            _net(2), config=config, max_rounds=4, fault_plan=plan
        ).run()
        expired = result.rounds[0].records[0]
        assert expired.fault == "deadline"
        assert expired.ran_session  # the session ran, then overran
        assert not expired.adopted
        assert result.rounds[0].global_mel == result.initial_mel
        reference = MultiSessionCoordinator(
            _net(2), config=config, max_rounds=4
        ).run()
        assert result.converged
        assert np.array_equal(result.choices[0], reference.choices[0])


class TestLinkFailure:
    def test_severed_column_is_evacuated(self, config, pair_defaults):
        _, defaults = pair_defaults
        # Sever the defaults' modal column: re-routing is then guaranteed.
        column = int(np.bincount(defaults).argmax())
        plan = FaultPlan(
            events=(FaultEvent(0, 0, "link_failure", columns=(column,)),)
        )
        result = MultiSessionCoordinator(
            _net(2), config=config, max_rounds=5, fault_plan=plan
        ).run()
        first = result.rounds[0].records[0]
        assert first.n_rerouted == int(np.count_nonzero(defaults == column))
        assert first.ran_session
        # Permanent severance: the final agreement never uses the column.
        assert not np.any(result.choices[0] == column)
        assert result.converged

    def test_mid_run_failure_forces_full_renegotiation(self, config):
        net = _net(2)
        probe = MultiSessionCoordinator(net, config=config, max_rounds=5)
        clean = probe.run()
        column = int(np.bincount(clean.choices[0]).argmax())
        plan = FaultPlan(
            events=(FaultEvent(1, 0, "link_failure", columns=(column,)),)
        )
        result = MultiSessionCoordinator(
            _net(2), config=config, max_rounds=6, fault_plan=plan
        ).run()
        hit = result.rounds[1].records[0]
        assert hit.n_rerouted > 0
        # The severance forces a full-scope renegotiation even though the
        # edge's observed context had not changed.
        assert hit.ran_session
        assert hit.scope_size == result.choices[0].size
        assert not np.any(result.choices[0] == column)
        assert result.converged


class TestQuarantine:
    def test_backoff_benches_the_edge(self, config):
        plan = FaultPlan(events=(FaultEvent(0, 0, "abort"),))
        result = MultiSessionCoordinator(
            _net(2), config=config, max_rounds=8, fault_plan=plan,
            quarantine_after=1, quarantine_backoff_rounds=2,
        ).run()
        faults = [r.records[0].fault for r in result.rounds]
        # abort, then 2 quarantined rounds, then the retry succeeds.
        assert faults[:3] == ["abort", "quarantined", "quarantined"]
        assert faults[3] is None
        assert result.rounds[3].records[0].ran_session
        assert result.converged
        assert result.stop_reason == "converged"

    def test_stop_reason_quarantined(self, config):
        plan = FaultPlan(events=(FaultEvent(0, 0, "abort"),))
        result = MultiSessionCoordinator(
            _net(2), config=config, max_rounds=2, fault_plan=plan,
            quarantine_after=1, quarantine_backoff_rounds=2,
        ).run()
        assert not result.converged
        assert result.stop_reason == "quarantined"

    def test_stop_reason_max_rounds(self, config):
        result = MultiSessionCoordinator(
            _net(2), config=config, max_rounds=1
        ).run()
        assert not result.converged
        assert result.stop_reason == "max_rounds"


class TestSeededReplay:
    def test_seeded_plan_coordination_is_replayable(self, config):
        def run_once():
            net = _net(3)
            probe = MultiSessionCoordinator(net, config=config)
            plan = FaultPlan.seeded(
                11,
                n_edges=net.n_edges(),
                n_rounds=8,
                n_alternatives=[
                    t.n_alternatives for t in probe._tables
                ],
                abort_rate=0.3,
                deadline_rate=0.2,
                link_failure_rate=0.3,
            )
            return MultiSessionCoordinator(
                net, config=config, max_rounds=8, transit_scale=3.0,
                fault_plan=plan,
            ).run()

        first, second = run_once(), run_once()
        assert first.stop_reason == second.stop_reason
        assert first.mel_trajectory() == second.mel_trajectory()
        for mine, theirs in zip(first.choices, second.choices):
            assert np.array_equal(mine, theirs)
        for round_a, round_b in zip(first.rounds, second.rounds):
            assert round_a.records == round_b.records


class TestScenarioAwareCoordination:
    MODEL = FailureModel(link_probability=0.05, cutoff=1e-4, max_failed=2)

    def test_cvar_gated_run_converges_and_reports(self, config):
        coordinator = MultiSessionCoordinator(
            _net(2), config=config, max_rounds=5,
            failure_model=self.MODEL, tail_weight=0.5, tail_quantile=0.9,
        )
        result = coordinator.run()
        assert result.converged
        report = coordinator.risk_report()
        assert len(report) == 1
        entry = report[0]
        assert entry["severed"] == ()
        for side in (0, 1):
            assert entry["cvar"][side] >= entry["var"][side]
            assert entry["expected"][side] >= 0.0

    def test_risk_report_requires_model(self, config):
        coordinator = MultiSessionCoordinator(_net(2), config=config)
        with pytest.raises(ConfigurationError, match="failure_model"):
            coordinator.risk_report()
