"""Shared fixtures: small deterministic topologies, pairs, and datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.topology.builders import (
    build_custom_isp,
    build_figure1_pair,
    build_figure2_pair,
)
from repro.topology.dataset import DatasetConfig, build_default_dataset
from repro.topology.generator import GeneratorConfig
from repro.topology.interconnect import Interconnection, IspPair


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench_smoke: one-shot exercise of the perf-critical kernels "
        "(no timing statistics); run just these with -m bench_smoke",
    )


@pytest.fixture(scope="session")
def fig1():
    return build_figure1_pair()


@pytest.fixture(scope="session")
def fig2():
    return build_figure2_pair()


@pytest.fixture(scope="session")
def tiny_dataset():
    """A 12-ISP dataset small enough for unit tests."""
    return build_default_dataset(
        DatasetConfig(
            n_isps=12,
            seed=42,
            generator=GeneratorConfig(min_pops=5, max_pops=9),
        )
    )


@pytest.fixture(scope="session")
def quick_config():
    return ExperimentConfig.quick()


@pytest.fixture(scope="session")
def small_pair():
    """A hand-built 2-interconnection pair with simple geometry.

    Both ISPs are 3-PoP chains sharing their end cities (Left, Right);
    all weights/lengths are exact integers for easy assertions.
    """
    isp_x = build_custom_isp(
        "xnet",
        [("Left", 40.0, -100.0), ("MidX", 40.0, -95.0), ("Right", 40.0, -90.0)],
        [(0, 1, 10.0), (1, 2, 10.0)],
    )
    isp_y = build_custom_isp(
        "ynet",
        [("Left", 40.0, -100.0), ("MidY", 41.0, -95.0), ("Right", 40.0, -90.0)],
        [(0, 1, 12.0), (1, 2, 12.0)],
    )
    ics = [
        Interconnection(index=0, city="Left", pop_a=0, pop_b=0),
        Interconnection(index=1, city="Right", pop_a=2, pop_b=2),
    ]
    return IspPair(isp_x, isp_y, ics)


@pytest.fixture()
def rng():
    return np.random.default_rng(123)
