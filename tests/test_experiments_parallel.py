"""Parallel figure sweeps: worker-count invariance and plumbing."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.bandwidth import run_bandwidth_experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.distance import run_distance_experiment
from repro.experiments.extensions import run_destination_experiment
from repro.experiments.oscillation import run_oscillation_experiment
from repro.experiments.parallel import (
    DATASET_CACHE_SIZE,
    _dataset_cache,
    dataset_for,
    parallel_map,
    pairs_for,
    resolve_workers,
    warm_dataset,
)


class TestResolveWorkers:
    def test_serial_spellings(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1

    def test_explicit(self):
        assert resolve_workers(3) == 3

    def test_negative_means_cpu_count(self):
        assert resolve_workers(-1) >= 1
        assert resolve_workers(-8) == resolve_workers(-1)

    def test_index_like_integers_accepted(self):
        assert resolve_workers(np.int64(3)) == 3

    @pytest.mark.parametrize("bad", [True, False, 2.5, 1.0, "4", [2]])
    def test_non_integers_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_workers(bad)


def test_parallel_map_serial_path():
    assert parallel_map(abs, [-2, 3, -4], workers=1) == [2, 3, 4]
    assert parallel_map(abs, [], workers=4) == []


class TestDatasetCache:
    def test_same_dataset_config_shares_entry(self):
        config = ExperimentConfig.quick()
        ds1 = dataset_for(config)
        # A different sweep cap over the same dataset config reuses the
        # built dataset (the cache keys on the *dataset* fingerprint).
        ds2 = dataset_for(replace(config, max_pairs_distance=1))
        assert ds1 is ds2

    def test_warm_start_primes_cache(self):
        config = ExperimentConfig.quick()
        dataset = warm_dataset(config)
        assert dataset_for(config) is dataset

    def test_cache_is_bounded(self):
        base = ExperimentConfig.quick()
        before = dict(_dataset_cache)
        try:
            _dataset_cache.clear()
            for i in range(DATASET_CACHE_SIZE + 2):
                dataset_for(
                    replace(base, dataset=replace(base.dataset, seed=9000 + i))
                )
            assert len(_dataset_cache) == DATASET_CACHE_SIZE
        finally:
            _dataset_cache.clear()
            _dataset_cache.update(before)

    def test_pairs_cached_per_filter(self):
        config = ExperimentConfig.quick()
        _, pairs1 = pairs_for(config, 2, config.max_pairs_distance)
        _, pairs2 = pairs_for(config, 2, config.max_pairs_distance)
        assert pairs1 is pairs2


@pytest.fixture(scope="module")
def tiny_config():
    return replace(
        ExperimentConfig.quick(), max_pairs_distance=2, max_pairs_bandwidth=2
    )


class TestWorkerInvariance:
    """workers=1 and workers>1 must produce identical figure data."""

    def test_distance(self, tiny_config):
        serial = run_distance_experiment(tiny_config, workers=1)
        parallel = run_distance_experiment(tiny_config, workers=2)
        assert len(serial.pairs) == len(parallel.pairs) > 0
        for s, p in zip(serial.pairs, parallel.pairs):
            assert s.pair_name == p.pair_name
            assert s.total_gain_optimal == p.total_gain_optimal
            assert s.total_gain_negotiated == p.total_gain_negotiated
            assert s.gain_a_negotiated == p.gain_a_negotiated
            assert s.gain_b_negotiated == p.gain_b_negotiated
            assert np.array_equal(s.flow_gains_optimal, p.flow_gains_optimal)
            assert np.array_equal(
                s.flow_gains_negotiated, p.flow_gains_negotiated
            )

    def test_bandwidth(self, tiny_config):
        serial = run_bandwidth_experiment(tiny_config, workers=1)
        parallel = run_bandwidth_experiment(tiny_config, workers=2)
        assert len(serial.cases) == len(parallel.cases) > 0
        for s, p in zip(serial.cases, parallel.cases):
            assert (s.pair_name, s.failed_city) == (p.pair_name, p.failed_city)
            assert s.n_affected == p.n_affected
            assert s.mel_default_a == p.mel_default_a
            assert s.mel_default_b == p.mel_default_b
            assert s.mel_negotiated_a == p.mel_negotiated_a
            assert s.mel_negotiated_b == p.mel_negotiated_b
            assert s.mel_opt_joint == p.mel_opt_joint

    def test_oscillation(self, tiny_config):
        serial = run_oscillation_experiment(tiny_config, workers=1)
        parallel = run_oscillation_experiment(tiny_config, workers=2)
        assert len(serial.pairs) == len(parallel.pairs) > 0
        assert serial.pairs == parallel.pairs  # frozen dataclasses

    def test_destination(self, tiny_config):
        serial = run_destination_experiment(tiny_config, workers=1)
        parallel = run_destination_experiment(tiny_config, workers=2)
        assert len(serial.pairs) == len(parallel.pairs) > 0
        for s, p in zip(serial.pairs, parallel.pairs):
            assert s.pair_name == p.pair_name
            assert s.total_gain_optimal == p.total_gain_optimal
            assert s.total_gain_negotiated == p.total_gain_negotiated
            assert s.gain_a_negotiated == p.gain_a_negotiated
            assert s.gain_b_negotiated == p.gain_b_negotiated
            assert s.source_dest_gain == p.source_dest_gain
