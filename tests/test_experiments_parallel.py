"""Parallel figure sweeps: worker-count invariance and plumbing."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.bandwidth import run_bandwidth_experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.distance import run_distance_experiment
from repro.experiments.parallel import parallel_map, resolve_workers


class TestResolveWorkers:
    def test_serial_spellings(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1

    def test_explicit(self):
        assert resolve_workers(3) == 3

    def test_negative_means_cpu_count(self):
        assert resolve_workers(-1) >= 1


def test_parallel_map_serial_path():
    assert parallel_map(abs, [-2, 3, -4], workers=1) == [2, 3, 4]
    assert parallel_map(abs, [], workers=4) == []


@pytest.fixture(scope="module")
def tiny_config():
    return replace(
        ExperimentConfig.quick(), max_pairs_distance=2, max_pairs_bandwidth=2
    )


class TestWorkerInvariance:
    """workers=1 and workers>1 must produce identical figure data."""

    def test_distance(self, tiny_config):
        serial = run_distance_experiment(tiny_config, workers=1)
        parallel = run_distance_experiment(tiny_config, workers=2)
        assert len(serial.pairs) == len(parallel.pairs) > 0
        for s, p in zip(serial.pairs, parallel.pairs):
            assert s.pair_name == p.pair_name
            assert s.total_gain_optimal == p.total_gain_optimal
            assert s.total_gain_negotiated == p.total_gain_negotiated
            assert s.gain_a_negotiated == p.gain_a_negotiated
            assert s.gain_b_negotiated == p.gain_b_negotiated
            assert np.array_equal(s.flow_gains_optimal, p.flow_gains_optimal)
            assert np.array_equal(
                s.flow_gains_negotiated, p.flow_gains_negotiated
            )

    def test_bandwidth(self, tiny_config):
        serial = run_bandwidth_experiment(tiny_config, workers=1)
        parallel = run_bandwidth_experiment(tiny_config, workers=2)
        assert len(serial.cases) == len(parallel.cases) > 0
        for s, p in zip(serial.cases, parallel.cases):
            assert (s.pair_name, s.failed_city) == (p.pair_name, p.failed_city)
            assert s.n_affected == p.n_affected
            assert s.mel_default_a == p.mel_default_a
            assert s.mel_default_b == p.mel_default_b
            assert s.mel_negotiated_a == p.mel_negotiated_a
            assert s.mel_negotiated_b == p.mel_negotiated_b
            assert s.mel_opt_joint == p.mel_opt_joint
