"""Tests for repro.util.validation."""

import pytest

from repro.errors import ConfigurationError
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckFinite:
    def test_passes_and_coerces(self):
        assert check_finite(3, "x") == 3.0
        assert isinstance(check_finite(3, "x"), float)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ConfigurationError, match="x"):
            check_finite(bad, "x")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.1, "x") == 0.1

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive(bad, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_non_negative(-0.001, "x")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(1.0, 1.0, 2.0, "x") == 1.0
        assert check_in_range(2.0, 1.0, 2.0, "x") == 2.0

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError):
            check_in_range(2.5, 1.0, 2.0, "x")


class TestCheckProbability:
    def test_accepts_half(self):
        assert check_probability(0.5, "p") == 0.5

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_probability(bad, "p")
