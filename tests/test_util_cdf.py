"""Tests for repro.util.cdf."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.util.cdf import Cdf, empirical_cdf, fraction_at_least, percentile


class TestCdfConstruction:
    def test_sorts_values(self):
        cdf = Cdf(values=(3.0, 1.0, 2.0))
        assert cdf.values == (1.0, 2.0, 3.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Cdf(values=())

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            Cdf(values=(1.0, float("nan")))

    def test_inf_rejected(self):
        with pytest.raises(ConfigurationError):
            Cdf(values=(1.0, float("inf")))

    def test_len(self):
        assert len(empirical_cdf([1, 2, 3])) == 3


class TestCdfQueries:
    def test_median_of_odd_sample(self):
        assert empirical_cdf([1, 2, 9]).median() == 2.0

    def test_min_max(self):
        cdf = empirical_cdf([5, 1, 3])
        assert cdf.min() == 1.0
        assert cdf.max() == 5.0

    def test_mean(self):
        assert empirical_cdf([1, 2, 3]).mean() == 2.0

    def test_percentile_bounds(self):
        cdf = empirical_cdf([1, 2, 3])
        assert cdf.percentile(0) == 1.0
        assert cdf.percentile(100) == 3.0

    def test_percentile_out_of_range(self):
        with pytest.raises(ConfigurationError):
            empirical_cdf([1]).percentile(101)

    def test_fraction_at_least(self):
        cdf = empirical_cdf([1, 2, 3, 4])
        assert cdf.fraction_at_least(3) == 0.5
        assert cdf.fraction_at_least(0) == 1.0
        assert cdf.fraction_at_least(5) == 0.0

    def test_fraction_at_most(self):
        cdf = empirical_cdf([1, 2, 3, 4])
        assert cdf.fraction_at_most(2) == 0.5

    def test_fraction_below_excludes_equal(self):
        cdf = empirical_cdf([0.0, 0.0, 1.0, -1.0])
        assert cdf.fraction_below(0.0) == 0.25


class TestCdfRendering:
    def test_series_endpoints(self):
        series = empirical_cdf([10, 20]).series(points=3)
        assert series[0] == (0.0, 10.0)
        assert series[-1] == (100.0, 20.0)

    def test_series_needs_two_points(self):
        with pytest.raises(ConfigurationError):
            empirical_cdf([1]).series(points=1)

    def test_format_rows_contains_label(self):
        text = empirical_cdf([1, 2], label="gain").format_rows(points=2)
        assert "gain" in text
        assert "n=2" in text


class TestModuleHelpers:
    def test_percentile_helper(self):
        assert percentile([1, 2, 3], 50) == 2.0

    def test_fraction_helper(self):
        assert fraction_at_least([1, 2, 3], 2) == pytest.approx(2 / 3)


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
def test_percentile_monotone(sample):
    cdf = empirical_cdf(sample)
    qs = np.linspace(0, 100, 11)
    values = [cdf.percentile(float(q)) for q in qs]
    assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
       st.floats(-1e6, 1e6))
def test_fractions_complement(sample, threshold):
    cdf = empirical_cdf(sample)
    below = cdf.fraction_below(threshold)
    at_least = cdf.fraction_at_least(threshold)
    assert below + at_least == pytest.approx(1.0)
