"""Tests for repro.geo.population."""

import pytest

from repro.errors import ConfigurationError
from repro.geo.cities import default_city_database
from repro.geo.coords import GeoPoint
from repro.geo.population import (
    GRID_HALF_SIDE_KM,
    PopulationModel,
    city_grid_population,
)


@pytest.fixture(scope="module")
def db():
    return default_city_database()


class TestGridPopulation:
    def test_city_center_includes_itself(self, db):
        seattle = db.get("Seattle")
        pop = city_grid_population(seattle.location, db)
        assert pop >= seattle.population

    def test_remote_ocean_point_is_zero(self, db):
        # Middle of the South Pacific: no cities within 40 km.
        pop = city_grid_population(GeoPoint(-40.0, -130.0), db)
        assert pop == 0.0

    def test_grid_radius_default(self):
        assert GRID_HALF_SIDE_KM == pytest.approx(25 * 1.609344)

    def test_invalid_radius(self, db):
        with pytest.raises(ConfigurationError):
            city_grid_population(GeoPoint(0, 0), db, grid_half_side_km=0)

    def test_larger_grid_counts_more(self, db):
        nyc = db.get("New York")
        small = city_grid_population(nyc.location, db, 10.0)
        large = city_grid_population(nyc.location, db, 500.0)
        assert large >= small


class TestPopulationModel:
    def test_weight_at_city(self, db):
        model = PopulationModel(db)
        tokyo = db.get("Tokyo")
        assert model.weight_at(tokyo.location) >= tokyo.population

    def test_floor_applies_in_ocean(self, db):
        model = PopulationModel(db, floor=1234.0)
        assert model.weight_at(GeoPoint(-40.0, -130.0)) == 1234.0

    def test_weight_for_city_uses_population(self, db):
        model = PopulationModel(db)
        city = db.get("London")
        assert model.weight_for_city(city) == city.population

    def test_weight_for_tiny_city_floored(self, db):
        model = PopulationModel(db, floor=10**9)
        assert model.weight_for_city(db.get("Dubai")) == 10**9
