"""Tests for the package's public API surface."""

import importlib

import pytest

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.geo",
            "repro.topology",
            "repro.routing",
            "repro.traffic",
            "repro.capacity",
            "repro.metrics",
            "repro.core",
            "repro.optimal",
            "repro.baselines",
            "repro.experiments",
            "repro.deploy",
            "repro.util",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        assert hasattr(mod, "__all__")
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name}"


class TestConvenienceEntryPoint:
    def test_negotiate_distance_pair(self, small_pair):
        outcome = repro.negotiate_distance_pair(small_pair)
        assert outcome.choices.shape == (
            2 * small_pair.isp_a.n_pops() * small_pair.isp_b.n_pops(),
        )
        assert outcome.gain_a >= 0
        assert outcome.gain_b >= 0

    def test_docstring_quickstart_works(self):
        scenario = repro.build_figure1_pair()
        outcome = repro.negotiate_distance_pair(scenario.pair)
        assert "negotiated" in outcome.summary()
