"""Tests for repro.routing.exits (exit-selection policies)."""

import numpy as np
import pytest

from repro.routing.costs import build_pair_cost_table
from repro.routing.exits import (
    early_exit_choices,
    late_exit_choices,
    optimal_exit_choices,
)
from repro.routing.flows import Flow, FlowSet


class TestFigure1Choices:
    """The Figure 1 flow: early=West, late=East, optimal=Center."""

    @pytest.fixture()
    def table(self, fig1):
        src, dst = fig1.flow_a_to_b
        return build_pair_cost_table(
            fig1.pair, FlowSet(fig1.pair, [Flow(0, src, dst)])
        )

    def test_early_exit_is_west(self, fig1, table):
        choice = early_exit_choices(table)[0]
        assert fig1.pair.interconnections[choice].city == "West"

    def test_late_exit_is_east(self, fig1, table):
        choice = late_exit_choices(table)[0]
        assert fig1.pair.interconnections[choice].city == "East"

    def test_optimal_is_center(self, fig1, table):
        choice = optimal_exit_choices(table)[0]
        assert fig1.pair.interconnections[choice].city == "Center"


class TestPolicies:
    @pytest.fixture()
    def table(self, small_pair):
        from repro.routing.flows import build_full_flowset

        return build_pair_cost_table(small_pair, build_full_flowset(small_pair))

    def test_early_exit_minimizes_upstream(self, table):
        choices = early_exit_choices(table)
        rows = np.arange(table.n_flows)
        chosen = table.up_weight[rows, choices]
        assert np.all(chosen <= table.up_weight.min(axis=1) + 1e-12)

    def test_late_exit_minimizes_downstream(self, table):
        choices = late_exit_choices(table)
        rows = np.arange(table.n_flows)
        chosen = table.down_weight[rows, choices]
        assert np.all(chosen <= table.down_weight.min(axis=1) + 1e-12)

    def test_optimal_minimizes_total(self, table):
        choices = optimal_exit_choices(table)
        rows = np.arange(table.n_flows)
        total = table.total_km()
        assert np.all(total[rows, choices] <= total.min(axis=1) + 1e-12)

    def test_shapes_and_dtypes(self, table):
        for policy in (early_exit_choices, late_exit_choices, optimal_exit_choices):
            choices = policy(table)
            assert choices.shape == (table.n_flows,)
            assert choices.dtype == np.intp
            assert choices.min() >= 0
            assert choices.max() < table.n_alternatives

    def test_ties_break_deterministically(self, table):
        a = early_exit_choices(table)
        b = early_exit_choices(table)
        assert np.array_equal(a, b)
