"""Tests for the Section 6 deployment layer."""

import numpy as np
import pytest

from repro.core.outcomes import NegotiationOutcome
from repro.deploy.flow_signatures import (
    FlowSignature,
    FlowSignatureTable,
    NewFlowAnnouncement,
)
from repro.deploy.netstate import LinkUtilization, collect_state
from repro.deploy.service import (
    DEFAULT_LOCAL_PREF,
    NegotiationService,
    RouteDirective,
)
from repro.errors import CapacityError, ProtocolError
from repro.topology.builders import build_line_isp


class TestFlowSignature:
    def test_valid(self):
        sig = FlowSignature("10.0.0.0/16", "10.1.0.0/16", 42)
        assert sig.ingress_id == 42

    def test_empty_prefix(self):
        with pytest.raises(ProtocolError):
            FlowSignature("", "10.1.0.0/16", 1)

    def test_negative_ingress(self):
        with pytest.raises(ProtocolError):
            FlowSignature("a/8", "b/8", -1)

    def test_announcement_size_positive(self):
        sig = FlowSignature("a/8", "b/8", 1)
        with pytest.raises(ProtocolError):
            NewFlowAnnouncement(sig, 0.0)


class TestFlowSignatureTable:
    def test_immediate_announcement_without_threshold(self):
        table = FlowSignatureTable(seed=1)
        ann = table.observe("a/8", "b/8", ingress_pop=3, rate=5.0, now=0.0)
        assert ann is not None
        assert ann.estimated_size == 5.0
        assert len(table) == 1

    def test_no_duplicate_announcements(self):
        table = FlowSignatureTable(seed=1)
        table.observe("a/8", "b/8", 3, 5.0, now=0.0)
        assert table.observe("a/8", "b/8", 3, 6.0, now=1.0) is None

    def test_threshold_and_sustain(self):
        table = FlowSignatureTable(size_threshold=10.0, sustain_seconds=60.0,
                                   seed=1)
        assert table.observe("a/8", "b/8", 0, 5.0, now=0.0) is None  # small
        assert table.observe("a/8", "b/8", 0, 20.0, now=10.0) is None  # new
        assert table.observe("a/8", "b/8", 0, 20.0, now=30.0) is None  # young
        ann = table.observe("a/8", "b/8", 0, 20.0, now=80.0)
        assert ann is not None  # sustained above threshold for 70s

    def test_dip_resets_sustain(self):
        table = FlowSignatureTable(size_threshold=10.0, sustain_seconds=60.0,
                                   seed=1)
        table.observe("a/8", "b/8", 0, 20.0, now=0.0)
        table.observe("a/8", "b/8", 0, 1.0, now=30.0)  # dips below
        assert table.observe("a/8", "b/8", 0, 20.0, now=70.0) is None

    def test_ingress_ids_unique_and_opaque(self):
        table = FlowSignatureTable(seed=1)
        a = table.observe("a/8", "b/8", 7, 5.0, now=0.0)
        b = table.observe("c/8", "d/8", 7, 5.0, now=0.0)
        # Same ingress PoP, different identifiers: no information leakage.
        assert a.signature.ingress_id != b.signature.ingress_id

    def test_expiry(self):
        table = FlowSignatureTable(timeout_seconds=100.0, seed=1)
        table.observe("a/8", "b/8", 0, 5.0, now=0.0)
        assert table.expire(now=50.0) == []
        expired = table.expire(now=150.0)
        assert len(expired) == 1
        assert len(table) == 0

    def test_negative_rate_rejected(self):
        table = FlowSignatureTable()
        with pytest.raises(ProtocolError):
            table.observe("a/8", "b/8", 0, -1.0, now=0.0)

    def test_bad_config(self):
        with pytest.raises(ProtocolError):
            FlowSignatureTable(timeout_seconds=0.0)


class TestNetState:
    def test_collect(self):
        isp = build_line_isp("n", ["A", "B", "C"])
        snapshot = collect_state(isp, np.array([1.0, 3.0]), np.array([2.0, 4.0]))
        assert snapshot.isp_name == "n"
        assert snapshot.max_utilization() == pytest.approx(0.75)
        assert len(snapshot.hotspots(0.7)) == 1

    def test_shape_validated(self):
        isp = build_line_isp("n", ["A", "B"])
        with pytest.raises(CapacityError):
            collect_state(isp, np.zeros(3), np.ones(3))

    def test_link_utilization_validation(self):
        with pytest.raises(CapacityError):
            LinkUtilization(0, load=1.0, capacity=0.0)
        with pytest.raises(CapacityError):
            LinkUtilization(0, load=-1.0, capacity=1.0)

    def test_arrays_roundtrip(self):
        isp = build_line_isp("n", ["A", "B", "C"])
        loads = np.array([1.0, 3.0])
        caps = np.array([2.0, 4.0])
        snapshot = collect_state(isp, loads, caps)
        assert np.array_equal(snapshot.loads(), loads)
        assert np.array_equal(snapshot.capacities(), caps)


def _outcome(choices, negotiated):
    choices = np.asarray(choices)
    negotiated = np.asarray(negotiated, dtype=bool)
    return NegotiationOutcome(
        choices=choices, negotiated=negotiated, gain_a=1, gain_b=1
    )


class TestNegotiationService:
    @pytest.fixture()
    def signatures(self):
        return [FlowSignature("a/8", "x/8", 1), FlowSignature("b/8", "y/8", 2)]

    def test_directives_only_for_negotiated(self, signatures):
        service = NegotiationService(signatures)
        outcome = _outcome([1, 0], [True, False])
        directives = service.compile_directives(outcome)
        assert len(directives) == 1
        assert directives[0].interconnection == 1
        assert directives[0].local_pref > DEFAULT_LOCAL_PREF

    def test_count_mismatch(self, signatures):
        service = NegotiationService(signatures)
        with pytest.raises(ProtocolError):
            service.compile_directives(_outcome([0], [False]))

    def test_verify_compliant(self, signatures):
        service = NegotiationService(signatures)
        outcome = _outcome([1, 0], [True, False])
        report = service.verify(outcome, np.array([1, 0]))
        assert report.is_compliant
        assert len(report.compliant) == 2

    def test_verify_violation(self, signatures):
        service = NegotiationService(signatures)
        outcome = _outcome([1, 0], [True, False])
        report = service.verify(outcome, np.array([0, 0]))
        assert not report.is_compliant
        signature, agreed, seen = report.violations[0]
        assert agreed == 1 and seen == 0

    def test_duplicate_signatures_rejected(self, signatures):
        with pytest.raises(ProtocolError):
            NegotiationService(signatures + [signatures[0]])

    def test_directive_local_pref_validated(self, signatures):
        with pytest.raises(ProtocolError):
            RouteDirective(signatures[0], 0, local_pref=50)
