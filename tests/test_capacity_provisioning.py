"""Tests for repro.capacity.provisioning."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.capacity.provisioning import ProportionalCapacity, UnusedLinkPolicy
from repro.errors import CapacityError


class TestProportionalCapacity:
    def test_proportional_above_median(self):
        loads = np.array([10.0, 20.0, 30.0])
        caps = ProportionalCapacity().capacities(loads)
        # Median is 20; 10 upgraded to 20, others unchanged.
        assert list(caps) == [20.0, 20.0, 30.0]

    def test_headroom(self):
        loads = np.array([10.0, 10.0])
        caps = ProportionalCapacity(headroom=1.5,
                                    upgrade_below_median=False).capacities(loads)
        assert np.allclose(caps, 15.0)

    def test_unused_links_get_median(self):
        loads = np.array([0.0, 10.0, 30.0])
        caps = ProportionalCapacity(upgrade_below_median=False).capacities(loads)
        assert caps[0] == pytest.approx(20.0)  # median of {10, 30}

    def test_unused_links_get_max(self):
        loads = np.array([0.0, 10.0, 30.0])
        caps = ProportionalCapacity(
            unused_policy=UnusedLinkPolicy.MAX, upgrade_below_median=False
        ).capacities(loads)
        assert caps[0] == 30.0

    def test_unused_links_get_mean(self):
        loads = np.array([0.0, 10.0, 30.0])
        caps = ProportionalCapacity(
            unused_policy=UnusedLinkPolicy.MEAN, upgrade_below_median=False
        ).capacities(loads)
        assert caps[0] == 20.0

    def test_upgrade_below_median(self):
        loads = np.array([1.0, 10.0, 100.0])
        caps = ProportionalCapacity().capacities(loads)
        assert caps.min() >= np.median(caps[caps > 0]) - 1e-12
        assert caps[2] == 100.0

    def test_power_of_two_rounding(self):
        loads = np.array([3.0, 10.0])
        caps = ProportionalCapacity(
            round_power_of_two=True, upgrade_below_median=False
        ).capacities(loads)
        assert list(caps) == [4.0, 16.0]

    def test_all_zero_loads(self):
        caps = ProportionalCapacity().capacities(np.zeros(4))
        assert np.all(caps > 0)

    def test_empty(self):
        caps = ProportionalCapacity().capacities(np.zeros(0))
        assert caps.shape == (0,)

    def test_negative_load_rejected(self):
        with pytest.raises(CapacityError):
            ProportionalCapacity().capacities(np.array([-1.0]))

    def test_2d_rejected(self):
        with pytest.raises(CapacityError):
            ProportionalCapacity().capacities(np.zeros((2, 2)))

    def test_bad_headroom(self):
        with pytest.raises(CapacityError):
            ProportionalCapacity(headroom=0.0)


@given(
    st.lists(st.floats(0.0, 1e6), min_size=1, max_size=40),
    st.booleans(),
    st.booleans(),
)
def test_capacities_always_positive_and_cover_load(loads, upgrade, pow2):
    loads = np.asarray(loads)
    caps = ProportionalCapacity(
        upgrade_below_median=upgrade, round_power_of_two=pow2
    ).capacities(loads)
    assert caps.shape == loads.shape
    assert np.all(caps > 0)
    # A link's capacity is never below its own pre-failure load.
    assert np.all(caps >= loads - 1e-9)


@given(st.lists(st.floats(0.01, 1e5), min_size=1, max_size=20))
def test_power_of_two_is_power_of_two(loads):
    caps = ProportionalCapacity(
        round_power_of_two=True, upgrade_below_median=False
    ).capacities(np.asarray(loads))
    logs = np.log2(caps)
    assert np.allclose(logs, np.round(logs))
