"""Tests for the min-max-load LP and unilateral optimization."""

import numpy as np
import pytest

from repro.capacity.loads import link_loads
from repro.errors import ConfigurationError, OptimizationError
from repro.metrics.mel import max_excess_load
from repro.optimal.bandwidth_lp import (
    LpRoutingResult,
    _link_constraint_rows,
    fractional_loads,
    solve_min_max_load_lp,
)
from repro.optimal.distance_opt import optimal_distance_choices
from repro.optimal.unilateral import solve_upstream_unilateral_lp
from repro.routing.costs import build_pair_cost_table
from repro.routing.exits import early_exit_choices, optimal_exit_choices
from repro.routing.flows import build_full_flowset


@pytest.fixture()
def table(small_pair):
    return build_pair_cost_table(small_pair, build_full_flowset(small_pair))


@pytest.fixture()
def caps(small_pair):
    return (
        np.full(small_pair.isp_a.n_links(), 3.0),
        np.full(small_pair.isp_b.n_links(), 3.0),
    )


class TestLpBasics:
    def test_fractions_are_distributions(self, table, caps):
        result = solve_min_max_load_lp(table, *caps)
        assert result.fractions.shape == (table.n_flows, table.n_alternatives)
        assert np.all(result.fractions >= 0)
        assert np.allclose(result.fractions.sum(axis=1), 1.0)

    def test_objective_matches_realized_mel(self, table, caps):
        caps_a, caps_b = caps
        result = solve_min_max_load_lp(table, caps_a, caps_b)
        mel_a = max_excess_load(
            fractional_loads(table, result.fractions, "a"), caps_a
        )
        mel_b = max_excess_load(
            fractional_loads(table, result.fractions, "b"), caps_b
        )
        assert max(mel_a, mel_b) == pytest.approx(result.t, abs=1e-6)

    def test_lower_bound_on_integral_placements(self, table, caps):
        """The fractional optimum lower-bounds every integral placement."""
        caps_a, caps_b = caps
        result = solve_min_max_load_lp(table, caps_a, caps_b)
        for choice_value in range(table.n_alternatives):
            choices = np.full(table.n_flows, choice_value)
            mel = max(
                max_excess_load(link_loads(table, choices, "a"), caps_a),
                max_excess_load(link_loads(table, choices, "b"), caps_b),
            )
            assert result.t <= mel + 1e-9

    def test_base_loads_raise_objective(self, table, caps):
        caps_a, caps_b = caps
        plain = solve_min_max_load_lp(table, caps_a, caps_b)
        base_a = np.full(table.pair.isp_a.n_links(), 2.0)
        loaded = solve_min_max_load_lp(table, caps_a, caps_b, base_a=base_a)
        assert loaded.t >= plain.t - 1e-12

    def test_empty_flowset(self, small_pair, caps):
        table = build_pair_cost_table(
            small_pair, build_full_flowset(small_pair)
        ).subset(np.array([], dtype=int))
        result = solve_min_max_load_lp(table, *caps)
        assert result.t == 0.0
        assert result.fractions.shape == (0, 2)

    def test_empty_flowset_with_base_loads(self, small_pair, caps):
        """The zero-flow LP degenerates to the base state's max load ratio."""
        caps_a, caps_b = caps
        table = build_pair_cost_table(
            small_pair, build_full_flowset(small_pair)
        ).subset(np.array([], dtype=int))
        base_a = caps_a * 0.5
        base_b = caps_b * 2.0
        result = solve_min_max_load_lp(
            table, caps_a, caps_b, base_a=base_a, base_b=base_b
        )
        assert result.t == 2.0
        # Restricted to the upstream side, only base_a matters.
        one_side = solve_min_max_load_lp(
            table, caps_a, caps_b, base_a=base_a, base_b=base_b, sides=("a",)
        )
        assert one_side.t == 0.5


class TestLpValidation:
    def test_bad_caps_shape(self, table):
        with pytest.raises(OptimizationError):
            solve_min_max_load_lp(table, np.ones(1), np.ones(1))

    def test_non_positive_caps(self, table, caps):
        caps_a, caps_b = caps
        with pytest.raises(OptimizationError):
            solve_min_max_load_lp(table, caps_a * 0.0, caps_b)

    def test_negative_base(self, table, caps):
        caps_a, caps_b = caps
        with pytest.raises(OptimizationError):
            solve_min_max_load_lp(
                table, caps_a, caps_b,
                base_a=-np.ones(table.pair.isp_a.n_links()),
            )

    def test_negative_objective_rejected(self):
        with pytest.raises(OptimizationError):
            LpRoutingResult(t=-1.0, fractions=np.zeros((0, 2)))

    def test_fractional_loads_shape_check(self, table):
        with pytest.raises(OptimizationError):
            fractional_loads(table, np.zeros((1, 1)), "a")

    def test_fractional_loads_bad_side(self, table):
        with pytest.raises(OptimizationError):
            fractional_loads(
                table, np.ones((table.n_flows, table.n_alternatives)), "q"
            )


class TestAssemblyEquivalence:
    """Incidence-backed LP assembly vs the legacy ragged-table loops.

    The vectorized assembler must emit the *same triplet sequence* as the
    loops (not merely an equivalent matrix), and vectorized
    ``fractional_loads`` must match the loop bit for bit — base loads and
    entries accumulate in the legacy order.
    """

    def test_constraint_triplets_identical(self, table, caps):
        caps_a, caps_b = caps
        t_col = table.n_flows * table.n_alternatives
        offset = 0
        for side, caps_side in (("a", caps_a), ("b", caps_b)):
            base = np.linspace(0.0, 1.0, caps_side.shape[0])
            sparse = _link_constraint_rows(
                table, side, caps_side, base, offset, t_col
            )
            legacy = _link_constraint_rows(
                table, side, caps_side, base, offset, t_col, engine="legacy"
            )
            for got, want in zip(sparse, legacy):
                assert np.array_equal(np.asarray(got), np.asarray(want))
            offset += caps_side.shape[0]

    def test_solution_identical(self, table, caps):
        caps_a, caps_b = caps
        base_a = np.full(caps_a.shape[0], 0.25)
        sparse = solve_min_max_load_lp(table, caps_a, caps_b, base_a=base_a)
        legacy = solve_min_max_load_lp(
            table, caps_a, caps_b, base_a=base_a, engine="legacy"
        )
        assert sparse.t == legacy.t
        assert np.array_equal(sparse.fractions, legacy.fractions)

    def test_unilateral_engines_identical(self, table, caps):
        caps_a, caps_b = caps
        sparse = solve_upstream_unilateral_lp(table, caps_a, caps_b)
        legacy = solve_upstream_unilateral_lp(
            table, caps_a, caps_b, engine="legacy"
        )
        assert sparse.t == legacy.t
        assert np.array_equal(sparse.fractions, legacy.fractions)

    def test_fractional_loads_identical(self, table, caps):
        rng = np.random.default_rng(7)
        fractions = rng.random((table.n_flows, table.n_alternatives))
        fractions[rng.random(fractions.shape) < 0.4] = 0.0
        for side in "ab":
            n_links = table.pair.isp(side).n_links()
            for base in (None, rng.random(n_links)):
                assert np.array_equal(
                    fractional_loads(table, fractions, side, base),
                    fractional_loads(
                        table, fractions, side, base, engine="legacy"
                    ),
                )

    def test_unknown_engine_rejected(self, table, caps):
        with pytest.raises(ConfigurationError):
            solve_min_max_load_lp(table, *caps, engine="nope")
        with pytest.raises(ConfigurationError):
            fractional_loads(
                table,
                np.ones((table.n_flows, table.n_alternatives)),
                "a",
                engine="nope",
            )


class TestUnilateral:
    def test_upstream_only_objective(self, table, caps):
        """Unilateral never beats the joint LP on the joint objective but is
        at least as good for the upstream alone."""
        caps_a, caps_b = caps
        joint = solve_min_max_load_lp(table, caps_a, caps_b)
        uni = solve_upstream_unilateral_lp(table, caps_a, caps_b)
        mel_uni_a = max_excess_load(
            fractional_loads(table, uni.fractions, "a"), caps_a
        )
        mel_joint_a = max_excess_load(
            fractional_loads(table, joint.fractions, "a"), caps_a
        )
        assert mel_uni_a <= mel_joint_a + 1e-9


class TestDistanceOptimal:
    def test_alias_of_optimal_exits(self, table):
        assert np.array_equal(
            optimal_distance_choices(table), optimal_exit_choices(table)
        )

    def test_beats_early_exit(self, table):
        from repro.metrics.distance import total_km

        early = total_km(table, early_exit_choices(table))
        optimal = total_km(table, optimal_distance_choices(table))
        assert optimal <= early + 1e-12
