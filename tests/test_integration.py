"""End-to-end integration tests spanning all layers."""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import (
    build_default_dataset,
    build_figure1_pair,
    negotiate_distance_pair,
)
from repro.experiments.distance import build_distance_problem
from repro.routing.exits import optimal_exit_choices

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestFigure1EndToEnd:
    """The paper's Figure 1 walkthrough through the public API."""

    def test_negotiation_finds_center(self):
        scenario = build_figure1_pair()
        outcome = negotiate_distance_pair(scenario.pair)
        ics = scenario.pair.interconnections
        src, dst = scenario.flow_a_to_b
        flow_index = src * scenario.pair.isp_b.n_pops() + dst
        assert ics[int(outcome.choices[flow_index])].city == "Center"
        assert outcome.gain_a > 0 and outcome.gain_b > 0

    def test_win_win_on_true_metric(self):
        scenario = build_figure1_pair()
        outcome = negotiate_distance_pair(scenario.pair)
        assert outcome.true_gain_a > 0
        assert outcome.true_gain_b > 0


class TestDatasetEndToEnd:
    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.experiments.config import ExperimentConfig

        return build_default_dataset(ExperimentConfig.quick().dataset)

    def test_negotiation_on_generated_pair(self, dataset):
        pair = dataset.pairs(min_interconnections=2, max_pairs=1)[0]
        outcome = negotiate_distance_pair(pair)
        assert outcome.gain_a >= 0
        assert outcome.gain_b >= 0
        assert outcome.true_gain_a >= -1e-9
        assert outcome.true_gain_b >= -1e-9

    def test_negotiated_between_default_and_optimal(self, dataset):
        pair = dataset.pairs(min_interconnections=2, max_pairs=1)[0]
        problem = build_distance_problem(pair)
        outcome = negotiate_distance_pair(pair)
        tot_def, _, _ = problem.totals(problem.defaults)
        opt = np.concatenate(
            [
                optimal_exit_choices(problem.table_ab),
                optimal_exit_choices(problem.table_ba),
            ]
        )
        tot_opt, _, _ = problem.totals(opt)
        tot_neg, _, _ = problem.totals(outcome.choices)
        assert tot_opt - 1e-9 <= tot_neg <= tot_def + 1e-9


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "failure_negotiation.py", "diverse_objectives.py",
     "cheating_demo.py", "bgp_exit_selection.py", "deployment_loop.py"],
)
def test_example_scripts_run(script):
    """Every shipped example must execute cleanly."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
