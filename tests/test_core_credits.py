"""Tests for the credits extension (Section 3 future work)."""

import numpy as np
import pytest

from repro.core.agent import NegotiationAgent
from repro.core.credits import CreditLedger, CreditSessionRunner
from repro.core.evaluators import StaticPreferenceEvaluator
from repro.core.session import NegotiationSession, SessionConfig
from repro.errors import NegotiationError


def _agent(name, prefs):
    prefs = np.asarray(prefs)
    return NegotiationAgent(
        name, StaticPreferenceEvaluator(prefs, np.zeros(prefs.shape[0], int))
    )


#: Epoch 1 favors B at A's expense; epoch 2 is the mirror image.
EPOCH_1 = ([[0, -2]], [[0, 5]])
EPOCH_2 = ([[0, 5]], [[0, -2]])


class TestCreditLedger:
    def test_initial_state(self):
        ledger = CreditLedger(credit_limit=3.0)
        assert ledger.available_credit("a") == 3.0
        assert ledger.floors() == (-3.0, -3.0)

    def test_balance_extends_credit(self):
        ledger = CreditLedger(credit_limit=3.0)
        ledger.settle(4.0, -1.0)
        assert ledger.available_credit("a") == 7.0
        assert ledger.available_credit("b") == 2.0

    def test_negative_limit_rejected(self):
        with pytest.raises(NegotiationError):
            CreditLedger(credit_limit=-1.0)

    def test_exceeding_limit_detected(self):
        ledger = CreditLedger(credit_limit=1.0)
        with pytest.raises(NegotiationError):
            ledger.settle(-5.0, 5.0)

    def test_zero_limit_keeps_floor_at_zero(self):
        ledger = CreditLedger(credit_limit=0.0)
        assert ledger.floors() == (0.0, 0.0)


class TestSessionFloors:
    def test_negative_floor_allows_bounded_loss(self):
        config = SessionConfig(rollback_floors=(-2.0, 0.0))
        session = NegotiationSession(
            _agent("a", EPOCH_1[0]), _agent("b", EPOCH_1[1]),
            config=config,
        )
        # A's termination is EARLY and it proposes first with no upside:
        # nothing happens; so use the runner path in the next test. Here
        # just validate config handling.
        out = session.run()
        assert out.gain_a >= -2.0

    def test_positive_floor_rejected(self):
        with pytest.raises(NegotiationError):
            SessionConfig(rollback_floors=(1.0, 0.0))

    def test_floor_pair_length_checked(self):
        with pytest.raises(NegotiationError):
            SessionConfig(rollback_floors=(0.0,))  # type: ignore[arg-type]


class TestCreditSessionRunner:
    def test_credit_enables_cross_epoch_trade(self):
        """The headline property: one-sided epochs become tradeable."""
        # Without credit: each epoch's losing side rolls everything back.
        no_credit = CreditSessionRunner(CreditLedger(credit_limit=0.0))
        no_credit.run_epoch(_agent("a", EPOCH_1[0]), _agent("b", EPOCH_1[1]))
        no_credit.run_epoch(_agent("a", EPOCH_2[0]), _agent("b", EPOCH_2[1]))
        assert no_credit.total_gains() == (0.0, 0.0)

        # With credit: A concedes in epoch 1 (debt 2) and is repaid in
        # epoch 2; both end positive.
        with_credit = CreditSessionRunner(CreditLedger(credit_limit=2.0))
        out1 = with_credit.run_epoch(
            _agent("a", EPOCH_1[0]), _agent("b", EPOCH_1[1])
        )
        assert out1.gain_a == -2 and out1.gain_b == 5
        out2 = with_credit.run_epoch(
            _agent("a", EPOCH_2[0]), _agent("b", EPOCH_2[1])
        )
        assert out2.gain_a == 5
        gains = with_credit.total_gains()
        assert gains[0] > 0 and gains[1] > 0

    def test_credit_is_bounded(self):
        """Debt can never exceed the limit, even over adversarial epochs."""
        runner = CreditSessionRunner(CreditLedger(credit_limit=2.0))
        for _ in range(4):  # B never repays
            runner.run_epoch(
                _agent("a", EPOCH_1[0]), _agent("b", EPOCH_1[1])
            )
        balance_a, _ = runner.total_gains()
        assert balance_a >= -2.0

    def test_outcomes_recorded(self):
        runner = CreditSessionRunner(CreditLedger(credit_limit=1.0))
        runner.run_epoch(_agent("a", EPOCH_2[0]), _agent("b", EPOCH_2[1]))
        assert len(runner.outcomes) == 1
        assert runner.ledger.n_sessions == 1
