"""Property-based equivalence of the derived-table fast paths.

Hypothesis-driven composition/commutation laws for the two structural
derivations on :class:`~repro.routing.costs.PairCostTable` (the PR 2/3
derive-don't-recompute contract), over seeded random flow sizes and random
index sets:

* ``subset`` is bit-identical to ``engine="legacy"`` for any valid index
  set — singleton, full-range (empty complement), reordered, empty;
* ``without_alternative`` and ``subset`` commute:
  ``t.without_alternative(k).subset(idx) == t.subset(idx).without_alternative(k)``;
* ``subset`` composes: ``t.subset(i).subset(j) == t.subset(i[j])``;
* compiled CSR incidences derived structurally along any of those routes
  are bit-identical to compiling the result's ragged rows from scratch.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.costs import PairCostTable, build_pair_cost_table
from repro.routing.flows import build_full_flowset
from repro.routing.incidence import PathIncidence
from repro.topology.builders import build_custom_isp
from repro.topology.interconnect import Interconnection, IspPair


def _property_table() -> PairCostTable:
    """A 3-interconnection pair with seeded, skewed flow sizes."""
    isp_x = build_custom_isp(
        "xnet",
        [
            ("Left", 40.0, -100.0),
            ("MidX", 40.0, -95.0),
            ("Mid", 41.0, -93.0),
            ("Right", 40.0, -90.0),
        ],
        [(0, 1, 10.0), (1, 2, 7.0), (2, 3, 10.0), (0, 2, 20.0)],
    )
    isp_y = build_custom_isp(
        "ynet",
        [
            ("Left", 40.0, -100.0),
            ("Mid", 41.0, -93.0),
            ("MidY", 42.0, -94.0),
            ("Right", 40.0, -90.0),
        ],
        [(0, 1, 12.0), (1, 2, 5.0), (2, 3, 9.0), (1, 3, 11.0)],
    )
    ics = [
        Interconnection(index=0, city="Left", pop_a=0, pop_b=0),
        Interconnection(index=1, city="Mid", pop_a=2, pop_b=1),
        Interconnection(index=2, city="Right", pop_a=3, pop_b=3),
    ]
    pair = IspPair(isp_x, isp_y, ics)
    rng = np.random.default_rng(20050503)
    sizes = rng.uniform(0.25, 4.0, size=(4, 4))
    flowset = build_full_flowset(pair, lambda s, d: float(sizes[s, d]))
    return build_pair_cost_table(pair, flowset)


TABLE = _property_table()


def assert_tables_identical(got: PairCostTable, want: PairCostTable) -> None:
    """Bit-exact equality across dense arrays, ragged rows and flowset."""
    for name in ("up_weight", "down_weight", "up_km", "down_km", "ic_km"):
        assert np.array_equal(getattr(got, name), getattr(want, name)), name
    assert len(got.up_links) == len(want.up_links)
    for got_row, want_row in zip(got.up_links, want.up_links):
        for g, w in zip(got_row, want_row):
            assert np.array_equal(g, w)
    for got_row, want_row in zip(got.down_links, want.down_links):
        for g, w in zip(got_row, want_row):
            assert np.array_equal(g, w)
    assert np.array_equal(got.flowset.srcs(), want.flowset.srcs())
    assert np.array_equal(got.flowset.dsts(), want.flowset.dsts())
    assert np.array_equal(got.flowset.sizes(), want.flowset.sizes())


def assert_incidences_identical(
    got: PathIncidence, want: PathIncidence
) -> None:
    assert got.n_flows == want.n_flows
    assert got.n_alternatives == want.n_alternatives
    assert got.n_links == want.n_links
    assert np.array_equal(got.indptr, want.indptr)
    assert np.array_equal(got.indices, want.indices)
    assert np.array_equal(got.entry_flow, want.entry_flow)


def _recompiled(table: PairCostTable, side: str) -> PathIncidence:
    """The incidence a from-scratch ragged compilation would produce."""
    link_table = table.up_links if side == "a" else table.down_links
    n_links = (
        table.pair.isp_a.n_links() if side == "a"
        else table.pair.isp_b.n_links()
    )
    return PathIncidence.from_link_table(
        link_table, n_links, table.n_alternatives
    )


def _warm_parent() -> PairCostTable:
    TABLE.incidence("a")
    TABLE.incidence("b")
    return TABLE


def _random_indices(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    n = TABLE.n_flows
    size = int(rng.integers(0, n + 1))
    return rng.permutation(n)[:size].astype(np.intp)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_subset_bit_identical_to_legacy(seed):
    idx = _random_indices(seed)
    table = _warm_parent()
    fast = table.subset(idx)
    legacy = table.subset(idx, engine="legacy")
    assert_tables_identical(fast, legacy)
    for side in "ab":
        assert_incidences_identical(
            fast.incidence(side), legacy.incidence(side)
        )
        assert_incidences_identical(
            fast.incidence(side), _recompiled(fast, side)
        )


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    k=st.integers(0, TABLE.n_alternatives - 1),
)
def test_column_drop_and_subset_commute(seed, k):
    idx = _random_indices(seed)
    table = _warm_parent()
    drop_first = table.without_alternative(k).subset(idx)
    subset_first = table.subset(idx).without_alternative(k)
    assert_tables_identical(drop_first, subset_first)
    for side in "ab":
        assert_incidences_identical(
            drop_first.incidence(side), subset_first.incidence(side)
        )
        assert_incidences_identical(
            drop_first.incidence(side), _recompiled(drop_first, side)
        )
    # And both stay bit-identical to the all-legacy derivation chain.
    legacy = table.without_alternative(k).subset(idx, engine="legacy")
    assert_tables_identical(drop_first, legacy)


@settings(max_examples=40, deadline=None)
@given(
    seed_outer=st.integers(0, 2**31 - 1),
    seed_inner=st.integers(0, 2**31 - 1),
)
def test_subset_composes(seed_outer, seed_inner):
    outer = _random_indices(seed_outer)
    rng = np.random.default_rng(seed_inner)
    size = int(rng.integers(0, outer.size + 1))
    inner = rng.permutation(outer.size)[:size].astype(np.intp)
    table = _warm_parent()
    chained = table.subset(outer).subset(inner)
    direct = table.subset(outer[inner])
    assert_tables_identical(chained, direct)
    for side in "ab":
        assert_incidences_identical(
            chained.incidence(side), direct.incidence(side)
        )


@pytest.mark.parametrize(
    "indices",
    [
        [0],  # singleton
        list(range(16)),  # full range: the empty complement
        list(reversed(range(16))),  # reordered full range
        [],  # empty selection
        [15, 3, 7],  # non-contiguous, unordered
    ],
)
def test_named_index_cases(indices):
    idx = np.asarray(indices, dtype=np.intp)
    table = _warm_parent()
    fast = table.subset(idx)
    legacy = table.subset(idx, engine="legacy")
    assert_tables_identical(fast, legacy)
    for side in "ab":
        assert_incidences_identical(
            fast.incidence(side), legacy.incidence(side)
        )
    for k in range(table.n_alternatives):
        assert_tables_identical(
            table.without_alternative(k).subset(idx),
            table.subset(idx).without_alternative(k),
        )


def test_fixture_shape():
    assert TABLE.n_flows == 16
    assert TABLE.n_alternatives == 3


class TestEmptySubsetShortCircuit:
    """Regression: an empty scope never compiles incidence (PR 3 rule)."""

    def test_cold_parent_empty_subset_never_compiles(self, monkeypatch):
        table = _property_table()  # cold: no incidence compiled yet
        reference = {
            side: _recompiled(table.subset(np.empty(0, dtype=np.intp),
                                           engine="legacy"), side)
            for side in "ab"
        }

        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("empty subset must not compile incidence")

        monkeypatch.setattr(PathIncidence, "from_link_table", boom)
        empty = table.subset(np.empty(0, dtype=np.intp))
        assert empty.n_flows == 0
        assert len(empty.flowset) == 0
        for side in "ab":
            incidence = empty.incidence(side)  # pre-attached, no compile
            assert_incidences_identical(incidence, reference[side])
            assert incidence.indices.size == 0

    def test_warm_parent_empty_subset_never_compiles(self, monkeypatch):
        table = _warm_parent()

        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("empty subset must not compile incidence")

        monkeypatch.setattr(PathIncidence, "from_link_table", boom)
        empty = table.subset(np.empty(0, dtype=np.intp))
        for side in "ab":
            assert empty.incidence(side).n_flows == 0

    def test_empty_subset_supports_loads_and_column_drops(self):
        from repro.capacity.loads import link_loads

        empty = TABLE.subset(np.empty(0, dtype=np.intp))
        loads = link_loads(empty, np.empty(0, dtype=np.intp), "a")
        assert loads.shape == (TABLE.pair.isp_a.n_links(),)
        assert not loads.any()
        dropped = empty.without_alternative(0)
        assert dropped.n_flows == 0
        assert dropped.n_alternatives == TABLE.n_alternatives - 1


# ---------------------------------------------------------------------------
# Multi-column drops (PR 6): without_alternatives / batch_without_alternatives
# ---------------------------------------------------------------------------


def _random_drop_set(seed: int) -> np.ndarray:
    """A random drop set of size 0 .. n_alternatives-1 (>= 1 survivor)."""
    rng = np.random.default_rng(seed)
    size = int(rng.integers(0, TABLE.n_alternatives))
    return np.sort(
        rng.permutation(TABLE.n_alternatives)[:size].astype(np.intp)
    )


def _compose_single_drops(
    table: PairCostTable, ks: np.ndarray, order: np.ndarray
) -> PairCostTable:
    """Fold per-column drops in ``order``, reindexing after each drop."""
    remaining = list(range(table.n_alternatives))
    result = table
    for k in ks[order]:
        position = remaining.index(int(k))
        result = result.without_alternative(position)
        remaining.pop(position)
    return result


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), order_seed=st.integers(0, 2**31 - 1))
def test_multi_drop_equals_any_composition_order(seed, order_seed):
    ks = _random_drop_set(seed)
    order = np.random.default_rng(order_seed).permutation(ks.size)
    table = _warm_parent()
    multi = table.without_alternatives(ks)
    composed = _compose_single_drops(table, ks, order)
    assert_tables_identical(multi, composed)
    legacy = table.without_alternatives(ks, engine="legacy")
    assert_tables_identical(multi, legacy)
    for side in "ab":
        assert_incidences_identical(
            multi.incidence(side), composed.incidence(side)
        )
        assert_incidences_identical(
            multi.incidence(side), _recompiled(multi, side)
        )


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), drop_seed=st.integers(0, 2**31 - 1))
def test_multi_drop_commutes_with_subset(seed, drop_seed):
    idx = _random_indices(seed)
    ks = _random_drop_set(drop_seed)
    table = _warm_parent()
    drop_first = table.without_alternatives(ks).subset(idx)
    subset_first = table.subset(idx).without_alternatives(ks)
    assert_tables_identical(drop_first, subset_first)
    for side in "ab":
        assert_incidences_identical(
            drop_first.incidence(side), subset_first.incidence(side)
        )
        assert_incidences_identical(
            drop_first.incidence(side), _recompiled(drop_first, side)
        )


@settings(max_examples=20, deadline=None)
@given(seeds=st.lists(st.integers(0, 2**31 - 1), min_size=1, max_size=6))
def test_batch_derive_matches_individual_drops(seeds):
    table = _warm_parent()
    drop_sets = [_random_drop_set(s) for s in seeds]
    batch = table.batch_without_alternatives(drop_sets)
    assert len(batch) == len(drop_sets)
    for derived, ks in zip(batch, drop_sets):
        assert_tables_identical(derived, table.without_alternatives(ks))
        assert_tables_identical(
            derived, table.without_alternatives(ks, engine="legacy")
        )
        for side in "ab":
            assert_incidences_identical(
                derived.incidence(side), _recompiled(derived, side)
            )


@pytest.mark.parametrize(
    "ks",
    [
        [],  # empty drop set: an equivalent copy
        [1],  # singleton: exactly without_alternative
        [0, 2],  # non-adjacent pair
        [0, 1],  # all-but-one survivors
        [1, 2],  # all-but-one, other end
    ],
)
def test_named_drop_cases(ks):
    table = _warm_parent()
    multi = table.without_alternatives(ks)
    assert multi.n_alternatives == table.n_alternatives - len(ks)
    assert_tables_identical(
        multi, table.without_alternatives(ks, engine="legacy")
    )
    composed = _compose_single_drops(
        table, np.asarray(ks, dtype=np.intp), np.arange(len(ks))
    )
    assert_tables_identical(multi, composed)
    if len(ks) == 1:
        assert_tables_identical(multi, table.without_alternative(ks[0]))
    for side in "ab":
        assert_incidences_identical(
            multi.incidence(side), _recompiled(multi, side)
        )


def test_drop_validation_unified_with_subset():
    from repro.errors import ConfigurationError, RoutingError

    table = _warm_parent()
    with pytest.raises(RoutingError, match="duplicates"):
        table.without_alternatives([0, 0])
    with pytest.raises(RoutingError, match="must be in 0"):
        table.without_alternatives([3])
    with pytest.raises(RoutingError, match="must be in 0"):
        table.without_alternatives([-1])
    with pytest.raises(RoutingError, match="every alternative"):
        table.without_alternatives([0, 1, 2])
    with pytest.raises(RoutingError, match="must be in 0"):
        table.without_alternative(7)
    with pytest.raises(ConfigurationError, match="engine"):
        table.without_alternatives([0], engine="nope")
    with pytest.raises(RoutingError, match="every alternative"):
        table.batch_without_alternatives([[0], [0, 1, 2]])
