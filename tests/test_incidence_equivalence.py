"""Sparse path-incidence engine vs legacy loops: exact equivalence.

The vectorized hot path (CSR incidence + batched kernels + incremental
session proposals) must be a pure performance change: on randomized
topologies across several seeds, every kernel produces *bit-identical*
results to the legacy Python-loop implementations — loads, preference
matrices, true deltas, and whole session outcomes. All assertions here are
exact (``array_equal`` / ``==``), never approximate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.capacity.loads import LoadTracker, link_loads
from repro.capacity.provisioning import ProportionalCapacity
from repro.core.agent import NegotiationAgent
from repro.core.evaluators import FortzCostEvaluator, LoadAwareEvaluator
from repro.core.mapping import AutoScaleDeltaMapper
from repro.core.evaluators import StaticCostEvaluator
from repro.core.preferences import PreferenceRange
from repro.core.session import NegotiationSession, SessionConfig
from repro.core.strategies import ReassignEveryFraction
from repro.routing.costs import build_pair_cost_table
from repro.routing.exits import early_exit_choices
from repro.routing.flows import build_full_flowset
from repro.routing.incidence import segment_max, segment_sum
from repro.topology.dataset import DatasetConfig, build_default_dataset
from repro.topology.generator import GeneratorConfig

SEEDS = [11, 202, 3033]


@pytest.fixture(scope="module", params=SEEDS)
def problem(request):
    """A randomized (table, capacities) problem per seed."""
    seed = request.param
    dataset = build_default_dataset(
        DatasetConfig(
            n_isps=20,
            seed=seed,
            generator=GeneratorConfig(min_pops=5, max_pops=10),
        )
    )
    pairs = dataset.pairs(min_interconnections=3)
    if not pairs:
        pairs = dataset.pairs(min_interconnections=2)
    pair = pairs[0]
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0.5, 3.0, size=pair.isp_a.n_pops() * pair.isp_b.n_pops())
    n_b = pair.isp_b.n_pops()
    table = build_pair_cost_table(
        pair,
        build_full_flowset(pair, size_fn=lambda s, d: float(weights[s * n_b + d])),
    )
    defaults = early_exit_choices(table)
    caps_a = ProportionalCapacity().capacities(link_loads(table, defaults, "a"))
    caps_b = ProportionalCapacity().capacities(link_loads(table, defaults, "b"))
    return table, defaults, caps_a, caps_b, rng


class TestIncidenceStructure:
    def test_matches_ragged_tables(self, problem):
        table, *_ = problem
        for side, ragged in (("a", table.up_links), ("b", table.down_links)):
            inc = table.incidence(side)
            assert inc.n_flows == table.n_flows
            assert inc.n_alternatives == table.n_alternatives
            for f in range(table.n_flows):
                for i in range(table.n_alternatives):
                    assert np.array_equal(
                        inc.row_links(f, i), np.asarray(ragged[f][i], dtype=np.intp)
                    )

    def test_cached_per_table(self, problem):
        table, *_ = problem
        assert table.incidence("a") is table.incidence("a")
        assert table.incidence("a") is not table.incidence("b")

    def test_entry_flow_alignment(self, problem):
        table, *_ = problem
        inc = table.incidence("a")
        for f in range(table.n_flows):
            start = inc.indptr[f * inc.n_alternatives]
            end = inc.indptr[(f + 1) * inc.n_alternatives]
            assert (inc.entry_flow[start:end] == f).all()


class TestSegmentReductions:
    def test_segment_max_with_empty_segments(self):
        vals = np.asarray([3.0, 1.0, 5.0, 2.0])
        ptr = np.asarray([0, 0, 2, 2, 4, 4])
        assert np.array_equal(
            segment_max(vals, ptr), np.asarray([0.0, 3.0, 0.0, 5.0, 0.0])
        )

    def test_segment_max_all_empty(self):
        assert np.array_equal(
            segment_max(np.empty(0), np.zeros(4, dtype=np.intp)),
            np.zeros(3),
        )

    def test_segment_sum_with_empty_segments(self):
        vals = np.asarray([3.0, 1.0, 5.0])
        ptr = np.asarray([0, 2, 2, 3])
        assert np.array_equal(segment_sum(vals, ptr), np.asarray([4.0, 0.0, 5.0]))


class TestLoadKernelEquivalence:
    def test_link_loads(self, problem):
        table, defaults, _, _, rng = problem
        for side in "ab":
            for _ in range(3):
                choices = rng.integers(0, table.n_alternatives, table.n_flows)
                sparse = link_loads(table, choices, side)
                legacy = link_loads(table, choices, side, engine="legacy")
                assert np.array_equal(sparse, legacy)
                active = rng.random(table.n_flows) < 0.6
                assert np.array_equal(
                    link_loads(table, choices, side, active=active),
                    link_loads(table, choices, side, active=active,
                               engine="legacy"),
                )

    def test_tracker_place_remove_peek(self, problem):
        table, defaults, caps_a, _, rng = problem
        sparse = LoadTracker(table, "a")
        legacy = LoadTracker(table, "a", engine="legacy")
        for _ in range(min(30, table.n_flows)):
            f = int(rng.integers(table.n_flows))
            i = int(rng.integers(table.n_alternatives))
            if rng.random() < 0.7:
                sparse.place(f, i)
                legacy.place(f, i)
            else:
                sparse.remove(f, i)
                legacy.remove(f, i)
            assert np.array_equal(sparse.loads, legacy.loads)
        for f in range(table.n_flows):
            scalar = np.asarray(
                [
                    legacy.peek_max_ratio(f, i, caps_a)
                    for i in range(table.n_alternatives)
                ]
            )
            assert np.array_equal(sparse.peek_max_ratio_all(f, caps_a), scalar)
            assert np.array_equal(legacy.peek_max_ratio_all(f, caps_a), scalar)

    def test_tracker_matrix(self, problem):
        table, defaults, caps_a, _, rng = problem
        tracker = LoadTracker(table, "a")
        for f in range(0, table.n_flows, 2):
            tracker.place(f, int(defaults[f]))
        remaining = rng.random(table.n_flows) < 0.7
        matrix = tracker.peek_max_ratio_matrix(remaining, caps_a)
        assert matrix.shape == (table.n_flows, table.n_alternatives)
        for f in range(table.n_flows):
            if remaining[f]:
                assert np.array_equal(
                    matrix[f], tracker.peek_max_ratio_all(f, caps_a)
                )
            else:
                assert (matrix[f] == 0.0).all()


@pytest.mark.parametrize("evaluator_cls", [LoadAwareEvaluator, FortzCostEvaluator])
class TestEvaluatorEquivalence:
    def test_recompute_and_true_delta(self, problem, evaluator_cls):
        table, defaults, caps_a, _, rng = problem
        sparse = evaluator_cls(table, "a", caps_a, defaults)
        legacy = evaluator_cls(table, "a", caps_a, defaults, engine="legacy")
        assert np.array_equal(sparse.preferences(), legacy.preferences())
        # Commit a third of the flows, reassign, and compare again.
        committed = np.zeros(table.n_flows, dtype=bool)
        for f in range(0, table.n_flows, 3):
            i = int(rng.integers(table.n_alternatives))
            assert sparse.true_delta(f, i) == legacy.true_delta(f, i)
            sparse.commit(f, i)
            legacy.commit(f, i)
            committed[f] = True
        sparse.reassign(~committed)
        legacy.reassign(~committed)
        assert np.array_equal(sparse.preferences(), legacy.preferences())
        for f in range(table.n_flows):
            for i in range(table.n_alternatives):
                assert sparse.true_delta(f, i) == legacy.true_delta(f, i)


def _outcome_signature(outcome):
    return (
        outcome.choices.tolist(),
        outcome.negotiated.tolist(),
        outcome.gain_a,
        outcome.gain_b,
        outcome.true_gain_a,
        outcome.true_gain_b,
        [
            (r.round_index, r.proposer, r.flow_index, r.alternative,
             r.pref_a, r.pref_b, r.accepted)
            for r in outcome.rounds
        ],
        outcome.rolled_back,
        outcome.reason,
        outcome.reassignments,
    )


class TestSessionEquivalence:
    def test_bandwidth_session(self, problem):
        """Sparse + incremental vs legacy + rescan: identical outcomes."""
        table, defaults, caps_a, caps_b, _ = problem

        def run(engine, incremental):
            session = NegotiationSession(
                NegotiationAgent(
                    "a",
                    LoadAwareEvaluator(table, "a", caps_a, defaults,
                                       engine=engine),
                ),
                NegotiationAgent(
                    "b",
                    LoadAwareEvaluator(table, "b", caps_b, defaults,
                                       engine=engine),
                ),
                sizes=table.flowset.sizes(),
                defaults=defaults,
                config=SessionConfig(
                    reassignment_policy=ReassignEveryFraction(0.05),
                    incremental_proposals=incremental,
                ),
            )
            return session.run()

        fast = _outcome_signature(run("sparse", None))
        slow = _outcome_signature(run("legacy", False))
        assert fast == slow

    def test_distance_session(self, problem):
        """Static evaluators: incremental proposals change nothing."""
        table, defaults, *_ = problem
        p_range = PreferenceRange(10)

        def run(incremental):
            mapper = AutoScaleDeltaMapper(p_range, conservative=False,
                                          quantile=100.0)
            session = NegotiationSession(
                NegotiationAgent(
                    "a", StaticCostEvaluator(table.up_km, defaults, mapper)
                ),
                NegotiationAgent(
                    "b", StaticCostEvaluator(table.down_km, defaults, mapper)
                ),
                defaults=defaults,
                config=SessionConfig(incremental_proposals=incremental),
            )
            return session.run()

        assert _outcome_signature(run(None)) == _outcome_signature(run(False))
